"""Extension experiment: bandwidth-adaptive throttling (ADAPT).

The paper's Figures 2/3 show prefetching's speedup collapsing as the
data bus slows: the disciplines lower the CPU-observed miss rate but
raise total bus demand, and at 32-cycle transfers the extra traffic
eats the latency they hide.  ADAPT (see :mod:`repro.prefetch.adaptive`)
is the feedback answer -- PWS's aggressive insertion with a runtime
bus-utilization throttle -- and this experiment replays the Figure 2/3
workload x bus-speed grid with ADAPT alongside NP, PREF and PWS to show
the recovery:

* on fast buses ADAPT stays within a few percent of PWS (the throttle
  engages only in brief saturation bursts), keeping the paper's
  best-case speedups;
* on the slow bus ADAPT holds windowed utilization at or below its
  configured ceiling and beats *PREF* -- the paper's baseline
  discipline -- where the open-loop disciplines give their gains back.

The headline claim this experiment checks (and ``main`` gates CI on):
at the slowest bus in the sweep, ADAPT's measured bus utilization stays
at or below its high watermark *and* its speedup over NP exceeds
PREF's, on at least :data:`CLAIM_MIN_WORKLOADS` workloads.

Water is the interesting counter-case: its prefetches are valuable even
through saturation phases (the paper's Table 2 shows it as the least
bus-bound workload), so shedding them costs more than the bandwidth
returned -- a faithful echo of the paper's point that bandwidth, not
policy, is the first-order limit.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.runner import DEFAULT_TRANSFER_LATENCIES, ExperimentRunner
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import ADAPT, NP, PREF, PWS, AdaptiveStrategy
from repro.workloads.registry import ALL_WORKLOAD_NAMES

__all__ = [
    "CLAIM_MIN_WORKLOADS",
    "AdaptiveCell",
    "AdaptiveResult",
    "main",
    "render",
    "render_chart",
    "run",
]

#: Strategies replayed alongside ADAPT (NP is the speedup baseline).
COMPARISON_STRATEGIES = (NP, PREF, PWS)

#: The acceptance claim requires this many qualifying workloads.
CLAIM_MIN_WORKLOADS = 2

#: The CI smoke frame (matches the audited quick grid's workload scale).
QUICK_CPUS = 12
QUICK_SCALE = 0.25
QUICK_LATENCIES = (4, 32)


@dataclass
class AdaptiveCell:
    """One (workload, strategy, latency) grid point.

    Attributes:
        speedup: NP exec cycles / this strategy's exec cycles (NP = 1.0).
        bus_utilization: whole-run bus busy fraction.
        prefetches_issued: prefetch instructions executed (incl. drops).
        prefetch_drops: prefetches dropped by the ADAPT throttle (0 for
            the open-loop disciplines).
    """

    speedup: float
    bus_utilization: float
    prefetches_issued: int = 0
    prefetch_drops: int = 0

    def to_dict(self) -> dict[str, float | int]:
        return {
            "speedup": round(self.speedup, 4),
            "bus_utilization": round(self.bus_utilization, 4),
            "prefetches_issued": self.prefetches_issued,
            "prefetch_drops": self.prefetch_drops,
        }


@dataclass
class AdaptiveResult:
    """``cells[workload][strategy][transfer_cycles]`` -> :class:`AdaptiveCell`.

    ``ceiling`` is the ADAPT high watermark the claim is judged against.
    """

    transfer_latencies: tuple[int, ...]
    ceiling: float
    cells: dict[str, dict[str, dict[int, AdaptiveCell]]] = field(default_factory=dict)

    @property
    def slow_bus(self) -> int:
        """The slowest (largest-latency) bus in the sweep."""
        return max(self.transfer_latencies)

    def qualifying_workloads(self) -> list[str]:
        """Workloads where ADAPT makes the claim at the slow bus.

        Qualify = ADAPT's slow-bus utilization stays at or below the
        ceiling *and* its slow-bus speedup beats PREF's.
        """
        slow = self.slow_bus
        out = []
        for workload, by_strategy in self.cells.items():
            adapt = by_strategy[ADAPT.name][slow]
            pref = by_strategy[PREF.name][slow]
            if adapt.bus_utilization <= self.ceiling and adapt.speedup > pref.speedup:
                out.append(workload)
        return out

    @property
    def claim_holds(self) -> bool:
        """The acceptance claim (>= CLAIM_MIN_WORKLOADS qualify)."""
        return len(self.qualifying_workloads()) >= CLAIM_MIN_WORKLOADS

    def to_dict(self) -> dict[str, object]:
        """JSON-safe artifact (the ``--json`` output)."""
        return {
            "transfer_latencies": list(self.transfer_latencies),
            "ceiling": self.ceiling,
            "slow_bus": self.slow_bus,
            "qualifying_workloads": self.qualifying_workloads(),
            "claim_holds": self.claim_holds,
            "cells": {
                workload: {
                    strategy: {
                        str(cycles): cell.to_dict() for cycles, cell in by_c.items()
                    }
                    for strategy, by_c in by_s.items()
                }
                for workload, by_s in self.cells.items()
            },
        }


def run(
    runner: ExperimentRunner | None = None,
    transfer_latencies: tuple[int, ...] = DEFAULT_TRANSFER_LATENCIES,
    adapt: AdaptiveStrategy = ADAPT,
) -> AdaptiveResult:
    """Sweep all workloads x (NP, PREF, PWS, ADAPT) over the latencies."""
    runner = runner or ExperimentRunner()
    strategies = COMPARISON_STRATEGIES + (adapt,)
    result = AdaptiveResult(
        transfer_latencies=tuple(transfer_latencies),
        ceiling=adapt.high_watermark,
    )
    for workload in ALL_WORKLOAD_NAMES:
        by_strategy: dict[str, dict[int, AdaptiveCell]] = {
            s.name: {} for s in strategies
        }
        for cycles in transfer_latencies:
            machine = runner.base_machine().with_transfer_cycles(cycles)
            baseline = runner.run(workload, NP, machine)
            for strategy in strategies:
                metrics = runner.run(workload, strategy, machine)
                by_strategy[strategy.name][cycles] = AdaptiveCell(
                    speedup=baseline.exec_cycles / metrics.exec_cycles,
                    bus_utilization=metrics.bus_utilization,
                    prefetches_issued=metrics.prefetches_issued,
                    prefetch_drops=metrics.prefetch_drops,
                )
        result.cells[workload] = by_strategy
    return result


def render(result: AdaptiveResult) -> str:
    """Text rendering: the sweep table plus the claim verdict."""
    slow = result.slow_bus
    headers = ["Workload", "Discipline"] + [
        f"{c}c speedup" for c in result.transfer_latencies
    ] + [f"{c}c bus util" for c in result.transfer_latencies] + ["slow-bus drops"]
    rows = []
    for workload, by_strategy in result.cells.items():
        for strategy, by_cycles in by_strategy.items():
            slow_cell = by_cycles[slow]
            drops = (
                f"{slow_cell.prefetch_drops}/{slow_cell.prefetches_issued}"
                if slow_cell.prefetch_drops
                else "-"
            )
            rows.append(
                [workload, strategy]
                + [round(by_cycles[c].speedup, 3) for c in result.transfer_latencies]
                + [
                    round(by_cycles[c].bus_utilization, 3)
                    for c in result.transfer_latencies
                ]
                + [drops]
            )
    table = format_table(
        headers,
        rows,
        title="Extension: bandwidth-adaptive throttling (speedup over NP)",
    )
    qualifying = result.qualifying_workloads()
    verdict = "HOLDS" if result.claim_holds else "FAILS"
    return (
        f"{table}\n"
        f"claim ({slow}-cycle bus): ADAPT utilization <= {result.ceiling:.2f} "
        f"and speedup > PREF on >= {CLAIM_MIN_WORKLOADS} workloads\n"
        f"qualifying workloads: {', '.join(qualifying) if qualifying else 'none'}\n"
        f"claim {verdict} ({len(qualifying)}/{CLAIM_MIN_WORKLOADS} required)"
    )


def render_chart(result: AdaptiveResult) -> str:
    """Per-workload speedup and bus-utilization panels (Figure 2 style)."""
    from repro.metrics.charts import line_chart

    panels = []
    for workload, by_strategy in result.cells.items():
        speedups = {
            strategy: [
                (float(c), cell.speedup) for c, cell in sorted(by_cycles.items())
            ]
            for strategy, by_cycles in by_strategy.items()
        }
        utils = {
            strategy: [
                (float(c), cell.bus_utilization)
                for c, cell in sorted(by_cycles.items())
            ]
            for strategy, by_cycles in by_strategy.items()
        }
        all_speedups = [y for pts in speedups.values() for _, y in pts]
        panels.append(
            line_chart(
                speedups,
                title=f"-- {workload}: speedup over NP vs data-bus latency --",
                y_min=min(0.95, min(all_speedups)),
                y_max=max(1.05, max(all_speedups)),
                height=12,
            )
        )
        panels.append(
            line_chart(
                utils,
                title=f"-- {workload}: bus utilization vs data-bus latency --",
                y_min=0.0,
                y_max=1.0,
                height=12,
            )
        )
    return "\n\n".join(panels)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exits nonzero when the claim fails (CI gate)."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.adaptive",
        description="replay the Figure 2/3 grid with the ADAPT throttle added",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI frame: {QUICK_CPUS} CPUs, scale {QUICK_SCALE}, "
        f"latencies {'/'.join(str(c) for c in QUICK_LATENCIES)}",
    )
    parser.add_argument("--cpus", type=int, default=None, help="override CPU count")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scale", type=float, default=None, help="override scale")
    parser.add_argument(
        "--cache", default="results/.cache", help="disk cache dir ('' disables)"
    )
    parser.add_argument(
        "--out",
        default="results/extension_adaptive.txt",
        help="rendered table artifact ('' disables)",
    )
    parser.add_argument(
        "--json",
        default="results/extension_adaptive.json",
        help="JSON artifact ('' disables)",
    )
    parser.add_argument("--chart", action="store_true", help="also print the charts")
    args = parser.parse_args(argv)

    cpus = args.cpus if args.cpus is not None else (QUICK_CPUS if args.quick else 12)
    scale = args.scale if args.scale is not None else (QUICK_SCALE if args.quick else 1.0)
    latencies = QUICK_LATENCIES if args.quick else DEFAULT_TRANSFER_LATENCIES
    runner = ExperimentRunner(
        num_cpus=cpus,
        seed=args.seed,
        scale=scale,
        disk_cache=args.cache or None,
    )
    result = run(runner, transfer_latencies=latencies)
    text = render(result)
    print(text)
    if args.chart:
        print()
        print(render_chart(result))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n", encoding="utf-8")
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return 0 if result.claim_holds else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
