"""Saturation dynamics: bus utilization *over time* (extension).

The paper's Table 2 reports one bus-utilization number per run, and its
central claim -- prefetching helps until the shared bus saturates, then
hurts -- is argued from those aggregates.  This experiment uses the
observability subsystem (:mod:`repro.obs`) to watch the claim happen:
windowed bus utilization and the demand/prefetch occupancy split for NP
vs. PREF vs. PWS on a fast (8-cycle) and a slow (32-cycle) bus.

On the fast bus the prefetchers' extra traffic fits in the headroom and
the utilization envelope stays below saturation; on the slow bus the
same prefetch streams pin the windowed utilization at ~1.0 for most of
the run while queue depth grows -- the dynamic signature of the
execution-time *increase* the paper reports at 32 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.runner import ExperimentRunner
from repro.metrics.charts import sparkline
from repro.prefetch.strategies import strategy_by_name

__all__ = ["SaturationCell", "SaturationResult", "render", "run"]

#: The disciplines contrasted: the baseline, the basic prefetcher, and
#: the most traffic-hungry one (redundant write-shared prefetches).
DEFAULT_STRATEGIES = ("NP", "PREF", "PWS")

#: The fast/slow bus pair of the headline experiment.
DEFAULT_TRANSFERS = (8, 32)


@dataclass
class SaturationCell:
    """One (strategy, transfer-latency) run's dynamic view."""

    strategy: str
    transfer_cycles: int
    exec_cycles: int
    window_cycles: int
    bus_utilization: float
    utilization_series: list[float]
    demand_share_series: list[float]
    prefetch_share_series: list[float]
    mean_queue: float
    peak_queue: int

    @property
    def saturated_fraction(self) -> float:
        """Fraction of windows with utilization >= 0.95 (saturation dwell)."""
        series = self.utilization_series
        if not series:
            return 0.0
        return sum(1 for u in series if u >= 0.95) / len(series)


@dataclass
class SaturationResult:
    """All cells of the saturation-dynamics comparison."""

    workload: str
    num_cpus: int
    scale: float
    transfer_latencies: tuple[int, ...]
    strategies: tuple[str, ...]
    cells: dict[tuple[int, str], SaturationCell]


def run(
    runner: ExperimentRunner | None = None,
    workload: str = "Mp3d",
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    transfer_latencies: tuple[int, ...] = DEFAULT_TRANSFERS,
    window: int = 4096,
) -> SaturationResult:
    """Simulate every (strategy, transfer) cell with telemetry enabled.

    ``runner`` only contributes the frame (CPU count, seed, scale): the
    observed runs execute on a dedicated runner whose ``sim_config`` has
    ``observe`` set, since telemetry-bearing results bypass the caches.
    """
    frame = runner or ExperimentRunner()
    obs_runner = ExperimentRunner(
        num_cpus=frame.num_cpus,
        seed=frame.seed,
        scale=frame.scale,
        sim_config=replace(
            frame.sim_config, observe=True, observe_window=window, observe_trace_capacity=0
        ),
    )
    cells: dict[tuple[int, str], SaturationCell] = {}
    for cycles in transfer_latencies:
        machine = obs_runner.base_machine().with_transfer_cycles(cycles)
        for name in strategies:
            result = obs_runner.run(workload, strategy_by_name(name), machine)
            obs = result.obs
            if obs is None:  # pragma: no cover - observe is set above
                raise RuntimeError("observed run returned no telemetry")
            cells[(cycles, name)] = SaturationCell(
                strategy=name,
                transfer_cycles=cycles,
                exec_cycles=result.exec_cycles,
                window_cycles=obs.window_cycles,
                bus_utilization=result.bus_utilization,
                utilization_series=obs.bus_utilization_series(),
                demand_share_series=obs.demand_share_series(),
                prefetch_share_series=obs.prefetch_share_series(),
                mean_queue=sum(obs.bus_queue) / result.exec_cycles
                if result.exec_cycles
                else 0.0,
                peak_queue=obs.peak_queue,
            )
    return SaturationResult(
        workload=workload,
        num_cpus=frame.num_cpus,
        scale=frame.scale,
        transfer_latencies=tuple(transfer_latencies),
        strategies=tuple(strategies),
        cells=cells,
    )


def render(result: SaturationResult, width: int = 64) -> str:
    """Sparkline view: one utilization timeline per cell.

    All sparklines are scaled against utilization 1.0, so a full-height
    glyph *is* a saturated window and envelopes compare across cells.
    """
    lines = [
        f"Saturation dynamics: {result.workload}, {result.num_cpus} CPUs, "
        f"scale {result.scale} (bus utilization per "
        f"{next(iter(result.cells.values())).window_cycles}-cycle window)"
    ]
    for cycles in result.transfer_latencies:
        lines.append("")
        lines.append(f"-- {cycles}-cycle transfers " + "-" * max(0, width - 12))
        for name in result.strategies:
            cell = result.cells[(cycles, name)]
            lines.append(
                f"{name:<5} util |{sparkline(cell.utilization_series, width, max_value=1.0)}| "
                f"avg {cell.bus_utilization:.2f}  sat {cell.saturated_fraction:.0%}  "
                f"queue avg {cell.mean_queue:.1f} peak {cell.peak_queue}  "
                f"exec {cell.exec_cycles:,}"
            )
            if any(cell.prefetch_share_series):
                lines.append(
                    f"      pf   |{sparkline(cell.prefetch_share_series, width, max_value=1.0)}| "
                    f"prefetch share of bus occupancy"
                )
    lines.append("")
    lines.append(
        "sparklines: one glyph per resampled window; full height = saturated "
        "(utilization 1.0 / share 1.0)"
    )
    return "\n".join(lines)
