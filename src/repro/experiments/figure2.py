"""Figure 2: execution times relative to NP vs. data-bus latency.

The paper's Figure 2 plots, per workload, the execution time of each
prefetching discipline relative to no prefetching, as a function of the
data-transfer latency (4 to 32 cycles).  Shapes to reproduce
(section 4.2):

* prefetching improves execution time on the fast buses and degrades it
  once the bus saturates;
* the high-miss-rate workloads show both the largest improvements (fast
  bus) and the degradations (slow bus);
* PWS is the best (or tied) discipline where prefetching is viable;
* LPD does not beat PREF despite eliminating prefetch-in-progress
  misses;
* the largest observed gain is a few tens of percent and the largest
  degradation a few percent (paper: +39 % best, -7 % worst).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.experiments.runner import DEFAULT_TRANSFER_LATENCIES, ExperimentRunner
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import ALL_STRATEGIES, PREFETCH_STRATEGIES
from repro.workloads.registry import ALL_WORKLOAD_NAMES

__all__ = ["Figure2Result", "render", "render_chart", "run"]


@dataclass
class Figure2Result:
    """``relative[workload][strategy][transfer_cycles]`` -> exec/NP-exec."""

    transfer_latencies: tuple[int, ...]
    relative: dict[str, dict[str, dict[int, float]]]

    def best_speedup(self) -> tuple[str, str, int, float]:
        """(workload, strategy, latency, speedup) of the best case."""
        best = ("", "", 0, 1.0)
        for wl, by_s in self.relative.items():
            for s, by_c in by_s.items():
                for c, rel in by_c.items():
                    speedup = 1.0 / rel
                    if speedup > best[3]:
                        best = (wl, s, c, speedup)
        return best

    def worst_slowdown(self) -> tuple[str, str, int, float]:
        """(workload, strategy, latency, speedup<1) of the worst case."""
        worst = ("", "", 0, 10.0)
        for wl, by_s in self.relative.items():
            for s, by_c in by_s.items():
                for c, rel in by_c.items():
                    speedup = 1.0 / rel
                    if speedup < worst[3]:
                        worst = (wl, s, c, speedup)
        return worst


def run(
    runner: ExperimentRunner | None = None,
    transfer_latencies: tuple[int, ...] = DEFAULT_TRANSFER_LATENCIES,
) -> Figure2Result:
    """Sweep all workloads and strategies over the bus latencies."""
    runner = runner or ExperimentRunner()
    relative: dict[str, dict[str, dict[int, float]]] = {}
    for workload in ALL_WORKLOAD_NAMES:
        relative[workload] = {s.name: {} for s in PREFETCH_STRATEGIES}
        for cycles in transfer_latencies:
            machine = runner.base_machine().with_transfer_cycles(cycles)
            baseline = runner.run(workload, ALL_STRATEGIES[0], machine)  # NP
            for strategy in PREFETCH_STRATEGIES:
                result = runner.run(workload, strategy, machine)
                relative[workload][strategy.name][cycles] = (
                    result.exec_cycles / baseline.exec_cycles
                )
    return Figure2Result(transfer_latencies=transfer_latencies, relative=relative)


def render(result: Figure2Result) -> str:
    """Text rendering of the Figure 2 series."""
    headers = ["Workload", "Discipline"] + [
        f"{c} cycles" for c in result.transfer_latencies
    ]
    rows = []
    for workload, by_strategy in result.relative.items():
        for strategy, by_cycles in by_strategy.items():
            rows.append(
                [workload, strategy]
                + [round(by_cycles[c], 3) for c in result.transfer_latencies]
            )
    best = result.best_speedup()
    worst = result.worst_slowdown()
    table = format_table(
        headers,
        rows,
        title="Figure 2: Execution times relative to no prefetching",
    )
    return (
        f"{table}\n"
        f"best speedup : {best[3]:.3f}x ({best[0]}/{best[1]} at {best[2]}-cycle transfer)\n"
        f"worst case   : {worst[3]:.3f}x ({worst[0]}/{worst[1]} at {worst[2]}-cycle transfer)"
    )


def render_chart(result: Figure2Result) -> str:
    """Line-plot rendering in the shape of the paper's Figure 2 panels."""
    from repro.metrics.charts import line_chart

    panels = []
    for workload, by_strategy in result.relative.items():
        series = {
            strategy: [(float(c), rel) for c, rel in sorted(by_cycles.items())]
            for strategy, by_cycles in by_strategy.items()
        }
        panels.append(
            line_chart(
                series,
                title=f"-- {workload}: exec time relative to NP vs data-bus latency --",
                y_min=min(0.55, min(r for s_ in series.values() for _, r in s_)),
                y_max=1.05,
                height=12,
            )
        )
    return "\n\n".join(panels)
