"""Table 5: relative execution times for the restructured programs.

The paper's Table 5 shows, for restructured Topopt and Pverify across
the bus-latency sweep, the execution time of each discipline relative
to the restructured NP baseline.  Shapes to reproduce (section 4.4):

* restructured Topopt's cache behaviour is so improved there is little
  left for prefetching to win;
* restructured Pverify benefits more from prefetching (until the bus
  saturates again);
* the simplest prefetching algorithm (PREF) approaches the
  write-shared-tailored one (PWS) once false sharing is gone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.experiments.runner import DEFAULT_TRANSFER_LATENCIES, ExperimentRunner
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import NP, PREF, PWS
from repro.workloads.registry import RESTRUCTURABLE_WORKLOAD_NAMES

__all__ = ["Table5Result", "render", "run"]

_STRATEGIES = (PREF, PWS)


@dataclass
class Table5Result:
    """``relative[(workload, strategy)][transfer_cycles]`` -> exec/NP."""

    transfer_latencies: tuple[int, ...]
    relative: dict[tuple[str, str], dict[int, float]]
    #: Restructured-NP speedup over original-NP, per workload and latency
    #: (how much the restructuring alone bought).
    restructuring_gain: dict[str, dict[int, float]]


def run(
    runner: ExperimentRunner | None = None,
    transfer_latencies: tuple[int, ...] = DEFAULT_TRANSFER_LATENCIES,
) -> Table5Result:
    """Measure restructured relative execution times across the sweep."""
    runner = runner or ExperimentRunner()
    relative: dict[tuple[str, str], dict[int, float]] = {}
    gain: dict[str, dict[int, float]] = {}
    for workload in RESTRUCTURABLE_WORKLOAD_NAMES:
        gain[workload] = {}
        for strategy in _STRATEGIES:
            relative[(workload, strategy.name)] = {}
        for cycles in transfer_latencies:
            machine = runner.base_machine().with_transfer_cycles(cycles)
            base_orig = runner.run(workload, NP, machine, restructured=False)
            base_restr = runner.run(workload, NP, machine, restructured=True)
            gain[workload][cycles] = base_orig.exec_cycles / base_restr.exec_cycles
            for strategy in _STRATEGIES:
                result = runner.run(workload, strategy, machine, restructured=True)
                relative[(workload, strategy.name)][cycles] = (
                    result.exec_cycles / base_restr.exec_cycles
                )
    return Table5Result(
        transfer_latencies=transfer_latencies,
        relative=relative,
        restructuring_gain=gain,
    )


def render(result: Table5Result) -> str:
    """Text rendering in the paper's Table 5 shape."""
    headers = ["Workload", "Discipline"] + [
        f"{c} cycles" for c in result.transfer_latencies
    ]
    rows = []
    for (workload, strategy), by_cycles in result.relative.items():
        rows.append(
            [f"{workload}/restructured", strategy]
            + [round(by_cycles[c], 3) for c in result.transfer_latencies]
        )
    table = format_table(
        headers,
        rows,
        title="Table 5: Relative execution times for restructured programs",
    )
    gains = "\n".join(
        f"restructuring alone sped up {wl} by "
        + ", ".join(f"{g:.2f}x@{c}c" for c, g in by_c.items())
        for wl, by_c in result.restructuring_gain.items()
    )
    return f"{table}\n{gains}"
