"""One-shot full reproduction report.

``run_all`` drives every experiment module off one shared runner (so
common simulations are shared) and stitches the rendered tables into a
single report, in the paper's presentation order.  The CLI exposes it
as ``python -m repro experiment all``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    headline,
    table1,
    table2,
    table3,
    table4,
    table5,
    utilization,
)
from repro.experiments.runner import ExperimentRunner

__all__ = ["FullReport", "run_all"]

#: (title, module) in the paper's presentation order.
_SECTIONS = (
    ("Table 1 — workloads", table1),
    ("Figure 1 — miss rates", figure1),
    ("Table 2 — bus utilizations", table2),
    ("Figure 2 — execution times", figure2),
    ("Figure 3 — CPU-miss components", figure3),
    ("Table 3 — invalidation & false sharing", table3),
    ("Table 4 — restructured miss rates", table4),
    ("Table 5 — restructured execution times", table5),
    ("Section 4.2 — processor utilizations", utilization),
    ("Headline — speedup extremes", headline),
)


@dataclass
class FullReport:
    """Every experiment's result plus the stitched text rendering."""

    results: dict[str, object]
    text: str


def run_all(runner: ExperimentRunner | None = None, charts: bool = False) -> FullReport:
    """Run every table/figure; returns results and the full report text.

    With ``charts=True`` the figures additionally render as terminal
    charts below their tables.
    """
    runner = runner or ExperimentRunner()
    results: dict[str, object] = {}
    sections: list[str] = []
    for title, module in _SECTIONS:
        result = module.run(runner)
        results[module.__name__.rsplit(".", 1)[-1]] = result
        rule = "=" * len(title)
        body = module.render(result)
        if charts and hasattr(module, "render_chart"):
            body += "\n\n" + module.render_chart(result)
        sections.append(f"{title}\n{rule}\n{body}")
    return FullReport(results=results, text="\n\n".join(sections))
