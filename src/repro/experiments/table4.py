"""Table 4: miss rates for the restructured programs.

The paper's Table 4 reports, for restructured Topopt and Pverify at the
8-cycle transfer latency, the CPU miss rate, total miss rate, total
invalidation miss rate and false-sharing miss rate under NP, PREF and
PWS.  Shapes to reproduce (section 4.4):

* restructuring eliminates almost all false sharing in both programs;
* Topopt improves across the board (locality improves too);
* Pverify's improvement comes almost exclusively from invalidation
  misses (non-sharing misses are essentially unchanged);
* after restructuring, plain PREF approaches PWS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.experiments.runner import DEFAULT_FIGURE_LATENCY, ExperimentRunner
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import NP, PREF, PWS
from repro.workloads.registry import RESTRUCTURABLE_WORKLOAD_NAMES

__all__ = ["TABLE4_STRATEGIES", "Table4Result", "render", "run"]

TABLE4_STRATEGIES = (NP, PREF, PWS)


@dataclass
class Table4Result:
    """``rows[(workload, restructured, strategy)]`` -> metric dict."""

    transfer_cycles: int
    rows: dict[tuple[str, bool, str], dict[str, float]]


def run(
    runner: ExperimentRunner | None = None,
    transfer_cycles: int = DEFAULT_FIGURE_LATENCY,
) -> Table4Result:
    """Measure original vs. restructured miss rates."""
    runner = runner or ExperimentRunner()
    machine = runner.base_machine().with_transfer_cycles(transfer_cycles)
    rows: dict[tuple[str, bool, str], dict[str, float]] = {}
    for workload in RESTRUCTURABLE_WORKLOAD_NAMES:
        for restructured in (False, True):
            for strategy in TABLE4_STRATEGIES:
                result = runner.run(workload, strategy, machine, restructured=restructured)
                mc = result.miss_counts
                refs = result.demand_refs
                rows[(workload, restructured, strategy.name)] = {
                    "cpu_mr": result.cpu_miss_rate,
                    "total_mr": result.total_miss_rate,
                    "invalidation_mr": result.invalidation_miss_rate,
                    "false_sharing_mr": result.false_sharing_miss_rate,
                    "nonsharing_mr": mc.nonsharing / refs if refs else 0.0,
                }
    return Table4Result(transfer_cycles=transfer_cycles, rows=rows)


def render(result: Table4Result) -> str:
    """Text rendering in the paper's Table 4 shape."""
    rows = []
    for (workload, restructured, strategy), row in result.rows.items():
        label = f"{workload}{'/restructured' if restructured else ''}"
        rows.append(
            [
                label,
                strategy,
                round(row["cpu_mr"], 4),
                round(row["total_mr"], 4),
                round(row["invalidation_mr"], 4),
                round(row["false_sharing_mr"], 4),
                round(row["nonsharing_mr"], 4),
            ]
        )
    return format_table(
        ["Workload", "Discipline", "CPU MR", "Total MR", "Inval MR", "FS MR", "NonShar MR"],
        rows,
        title=(
            "Table 4: Miss rates for restructured programs "
            f"({result.transfer_cycles}-cycle data transfer)"
        ),
    )
