"""Dynamic line attribution vs. Table 4 restructuring (extension).

The paper's restructuring story (section 4.4, Tables 4/5) says: the
invalidation misses that cap prefetching come from a small set of
falsely-shared structures, and the Jeremiassen–Eggers transformations
remove them.  This experiment closes the loop *dynamically*: run the
restructurable workloads with the per-line heat profiler
(:mod:`repro.obs.lineprof`), fold the measured misses onto named
structures (:mod:`repro.analysis.dynamic`), and check that

* the structures the dynamic profiler blames for false-sharing misses
  are exactly the ones the static advisor says to transform, and
* re-running on the restructured layout collapses those structures'
  false-sharing misses -- the measured counterpart of Table 4's
  miss-rate drops.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.advisor import advise
from repro.analysis.dynamic import (
    StructureHeat,
    attribute_lines,
    blamed_families,
    cross_reference,
)
from repro.experiments.runner import ExperimentRunner
from repro.metrics.formatting import format_table
from repro.obs.lineprof import EFFICACY_BUCKETS
from repro.prefetch.strategies import strategy_by_name
from repro.workloads.registry import RESTRUCTURABLE_WORKLOAD_NAMES

__all__ = ["FamilyDelta", "LineAttributionResult", "WorkloadLineAttribution", "render", "run"]

#: The strategy profiled: PWS is the paper's best prefetcher on these
#: workloads, so its residual misses are the ones restructuring targets.
DEFAULT_STRATEGY = "PWS"


@dataclass
class FamilyDelta:
    """One structure's measured heat, original vs. restructured layout."""

    family: str
    advised_action: str
    fs_misses: int
    fs_misses_restructured: int
    invalidation_misses: int
    invalidation_misses_restructured: int
    handoffs: int
    handoffs_restructured: int
    stall_cycles: int
    stall_cycles_restructured: int

    @property
    def fs_reduction(self) -> float:
        """Fraction of false-sharing misses the restructuring removed."""
        if not self.fs_misses:
            return 0.0
        return 1.0 - self.fs_misses_restructured / self.fs_misses


@dataclass
class WorkloadLineAttribution:
    """One workload's dynamic-blame vs. restructuring comparison."""

    workload: str
    strategy: str
    blamed: list[str]
    advised: dict[str, str]
    matched: list[str]
    families: list[FamilyDelta]
    efficacy: dict[str, int]
    reconcile_problems: int


@dataclass
class LineAttributionResult:
    """All workloads of the line-attribution experiment."""

    num_cpus: int
    scale: float
    strategy: str
    cells: dict[str, WorkloadLineAttribution]


def _family_index(heats: list[StructureHeat]) -> dict[str, StructureHeat]:
    return {h.name: h for h in heats}


def run(
    runner: ExperimentRunner | None = None,
    workloads: tuple[str, ...] = RESTRUCTURABLE_WORKLOAD_NAMES,
    strategy: str = DEFAULT_STRATEGY,
    window: int = 4096,
) -> LineAttributionResult:
    """Profile each workload's lines on the original and restructured
    layouts and fold the measurements onto named structures.

    ``runner`` only contributes the frame (CPU count, seed, scale): the
    observed runs execute on a dedicated runner with ``observe_lines``
    set, since telemetry-bearing results bypass the caches.
    """
    frame = runner or ExperimentRunner()
    obs_runner = ExperimentRunner(
        num_cpus=frame.num_cpus,
        seed=frame.seed,
        scale=frame.scale,
        sim_config=replace(
            frame.sim_config,
            observe=True,
            observe_lines=True,
            observe_window=window,
            observe_trace_capacity=0,
        ),
    )
    strat = strategy_by_name(strategy)
    machine = obs_runner.base_machine()
    cells: dict[str, WorkloadLineAttribution] = {}
    for workload in workloads:
        heats: dict[bool, list[StructureHeat]] = {}
        problems = 0
        efficacy: dict[str, int] = {}
        for restructured in (False, True):
            result = obs_runner.run(workload, strat, machine, restructured=restructured)
            profile = result.obs.lines
            problems += len(result.obs.reconcile(result))
            arrays = obs_runner.trace_metadata(workload, restructured).get("arrays") or []
            heats[restructured] = attribute_lines(profile, arrays)
            if not restructured:
                efficacy = {b: profile.total(b) for b in EFFICACY_BUCKETS}
        recommendations = advise(obs_runner.clean_trace(workload, restructured=False))
        cross_reference(heats[False], recommendations)
        blamed = blamed_families(heats[False])
        advised = {r.array: r.action for r in recommendations if r.action != "keep"}
        matched = [name for name in blamed if name in advised]

        after = _family_index(heats[True])
        deltas = []
        for name in dict.fromkeys(blamed + list(advised)):
            before = _family_index(heats[False]).get(name, StructureHeat(name, True))
            post = after.get(name, StructureHeat(name, True))
            deltas.append(
                FamilyDelta(
                    family=name,
                    advised_action=advised.get(name, "keep"),
                    fs_misses=before.false_sharing_misses,
                    fs_misses_restructured=post.false_sharing_misses,
                    invalidation_misses=before.invalidation_misses,
                    invalidation_misses_restructured=post.invalidation_misses,
                    handoffs=before.handoffs,
                    handoffs_restructured=post.handoffs,
                    stall_cycles=before.stall_cycles,
                    stall_cycles_restructured=post.stall_cycles,
                )
            )
        cells[workload] = WorkloadLineAttribution(
            workload=workload,
            strategy=strategy,
            blamed=blamed,
            advised=advised,
            matched=matched,
            families=deltas,
            efficacy=efficacy,
            reconcile_problems=problems,
        )
    return LineAttributionResult(
        num_cpus=frame.num_cpus,
        scale=frame.scale,
        strategy=strategy,
        cells=cells,
    )


def render(result: LineAttributionResult) -> str:
    """Text report: per workload, the blamed structures and the measured
    effect of restructuring on them."""
    parts = [
        f"Dynamic line attribution vs. restructuring: {result.strategy}, "
        f"{result.num_cpus} CPUs, scale {result.scale}"
    ]
    for workload, cell in result.cells.items():
        rows = [
            [
                d.family,
                d.advised_action,
                d.fs_misses,
                d.fs_misses_restructured,
                f"{d.fs_reduction:.0%}" if d.fs_misses else "-",
                d.invalidation_misses,
                d.invalidation_misses_restructured,
                d.handoffs,
                d.handoffs_restructured,
                d.stall_cycles,
                d.stall_cycles_restructured,
            ]
            for d in cell.families
        ]
        parts.append(
            format_table(
                [
                    "Structure",
                    "Advisor",
                    "FS miss",
                    "FS rest.",
                    "Removed",
                    "Inval",
                    "Inval rest.",
                    "Hoff",
                    "Hoff rest.",
                    "Stall",
                    "Stall rest.",
                ],
                rows,
                title=f"{workload}: measured heat, original vs. restructured layout",
            )
        )
        eff = cell.efficacy
        parts.append(
            f"{workload}: dynamic blame {', '.join(cell.blamed) or '(none)'}; "
            f"advisor transforms {', '.join(cell.advised) or '(none)'}; "
            f"agreement on {', '.join(cell.matched) or '(none)'}"
        )
        parts.append(
            f"{workload}: prefetch efficacy (original) "
            + " ".join(f"{b}={eff.get(b, 0)}" for b in EFFICACY_BUCKETS)
            + f"; reconciliation mismatches {cell.reconcile_problems}"
        )
    return "\n\n".join(parts) + "\n"
