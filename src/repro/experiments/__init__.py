"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes a ``run(runner) -> <Result>`` function
and a ``render(result) -> str`` that prints the same rows/series the
paper reports.  :class:`~repro.experiments.runner.ExperimentRunner`
caches traces and simulation results, so experiments that share
configurations (e.g. Figure 1 and Figure 3 both use the 8-cycle
machine) do not re-simulate.

Experiment index (see DESIGN.md for the full mapping):

* :mod:`repro.experiments.table1` -- workload inventory
* :mod:`repro.experiments.figure1` -- miss rates per strategy
* :mod:`repro.experiments.table2` -- bus utilizations
* :mod:`repro.experiments.figure2` -- relative execution times
* :mod:`repro.experiments.figure3` -- CPU-miss components
* :mod:`repro.experiments.table3` -- invalidation & false-sharing rates
* :mod:`repro.experiments.table4` -- restructured miss rates
* :mod:`repro.experiments.table5` -- restructured execution times
* :mod:`repro.experiments.utilization` -- processor utilizations (4.2)
* :mod:`repro.experiments.headline` -- headline speedup extremes
* :mod:`repro.experiments.saturation` -- bus saturation dynamics over
  time (extension; built on :mod:`repro.obs`)
* :mod:`repro.experiments.lineattr` -- dynamic line attribution vs.
  Table 4 restructuring (extension; built on
  :mod:`repro.obs.lineprof`)
* :mod:`repro.experiments.adaptive` -- bandwidth-adaptive throttling
  (ADAPT) vs the open-loop disciplines (extension; built on
  :mod:`repro.prefetch.adaptive`)
"""

from repro.experiments.runner import (
    DEFAULT_TRANSFER_LATENCIES,
    ExperimentRunner,
    StrategyResult,
    run_strategy,
)

__all__ = [
    "DEFAULT_TRANSFER_LATENCIES",
    "ExperimentRunner",
    "StrategyResult",
    "run_strategy",
]
