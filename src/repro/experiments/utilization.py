"""Processor utilizations before prefetching (section 4.2 text).

The paper reads the headroom available to any latency-hiding technique
off the NP processor utilizations: "the best any memory-latency hiding
technique can do is to bring processor utilization to 1", so a Water at
0.82 can gain at most ~1.2x while an Mp3d at 0.22-0.39 has room for
2.5-4.5x.  This experiment reports the NP utilizations on the fastest
and slowest buses and the implied maximum speedups, and compares the
implied bound against the speedup each workload actually achieved
(which falls far short for the memory-bound workloads -- the paper's
core argument).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.experiments.runner import ExperimentRunner
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import NP, PREFETCH_STRATEGIES
from repro.workloads.registry import ALL_WORKLOAD_NAMES

__all__ = ["UtilizationResult", "render", "run"]


@dataclass
class UtilizationResult:
    """Per workload: NP utilization and bounds at both bus extremes."""

    fast_cycles: int
    slow_cycles: int
    rows: dict[str, dict[str, float]]


def run(
    runner: ExperimentRunner | None = None,
    fast_cycles: int = 4,
    slow_cycles: int = 32,
) -> UtilizationResult:
    """Measure NP processor utilization and best achieved speedups."""
    runner = runner or ExperimentRunner()
    rows: dict[str, dict[str, float]] = {}
    for workload in ALL_WORKLOAD_NAMES:
        row: dict[str, float] = {}
        for label, cycles in (("fast", fast_cycles), ("slow", slow_cycles)):
            machine = runner.base_machine().with_transfer_cycles(cycles)
            base = runner.run(workload, NP, machine)
            util = base.processor_utilization
            row[f"util_{label}"] = util
            row[f"max_speedup_{label}"] = 1.0 / util if util else float("inf")
            best = max(
                base.exec_cycles / runner.run(workload, s, machine).exec_cycles
                for s in PREFETCH_STRATEGIES
            )
            row[f"achieved_{label}"] = best
        rows[workload] = row
    return UtilizationResult(fast_cycles=fast_cycles, slow_cycles=slow_cycles, rows=rows)


def render(result: UtilizationResult) -> str:
    """Text rendering of the section 4.2 utilization discussion."""
    rows = []
    for workload, row in result.rows.items():
        rows.append(
            [
                workload,
                round(row["util_fast"], 2),
                round(row["util_slow"], 2),
                round(row["max_speedup_fast"], 2),
                round(row["max_speedup_slow"], 2),
                round(row["achieved_fast"], 2),
                round(row["achieved_slow"], 2),
            ]
        )
    return format_table(
        [
            "Workload",
            f"NP util @{result.fast_cycles}c",
            f"NP util @{result.slow_cycles}c",
            "Max speedup (fast)",
            "Max speedup (slow)",
            "Achieved (fast)",
            "Achieved (slow)",
        ],
        rows,
        title="Processor utilizations before prefetching (section 4.2)",
    )
