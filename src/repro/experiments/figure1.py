"""Figure 1: total and CPU miss rates for the five workloads.

The paper's Figure 1 shows, for each workload under each prefetching
discipline (NP, PREF, EXCL, LPD, PWS) at the 8-cycle data-transfer
latency, three bars: the total miss rate, the CPU miss rate, and the
adjusted CPU miss rate (CPU misses excluding accesses that found their
prefetch still in progress).

Headline shapes to reproduce (section 4.2):

* CPU miss rates fall substantially under every strategy (paper:
  37-71 % for PREF, 57-80 % for PWS);
* total miss rates *increase* under every strategy;
* the prefetch-in-progress component (CPU minus adjusted) grows as the
  bus slows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.experiments.runner import DEFAULT_FIGURE_LATENCY, ExperimentRunner
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import ALL_STRATEGIES
from repro.workloads.registry import ALL_WORKLOAD_NAMES

__all__ = ["Figure1Result", "render", "render_chart", "run"]


@dataclass
class Figure1Result:
    """``rates[workload][strategy]`` = dict of the three miss rates."""

    transfer_cycles: int
    rates: dict[str, dict[str, dict[str, float]]]

    def reduction(self, workload: str, strategy: str, metric: str = "cpu") -> float:
        """Fractional reduction of a miss rate vs. NP (positive = fell)."""
        base = self.rates[workload]["NP"][metric]
        now = self.rates[workload][strategy][metric]
        return (base - now) / base if base else 0.0


def run(
    runner: ExperimentRunner | None = None,
    transfer_cycles: int = DEFAULT_FIGURE_LATENCY,
) -> Figure1Result:
    """Simulate all workloads under all five strategies at one latency."""
    runner = runner or ExperimentRunner()
    machine = runner.base_machine().with_transfer_cycles(transfer_cycles)
    rates: dict[str, dict[str, dict[str, float]]] = {}
    for workload in ALL_WORKLOAD_NAMES:
        rates[workload] = {}
        for strategy in ALL_STRATEGIES:
            result = runner.run(workload, strategy, machine)
            rates[workload][strategy.name] = {
                "total": result.total_miss_rate,
                "cpu": result.cpu_miss_rate,
                "adjusted": result.adjusted_cpu_miss_rate,
            }
    return Figure1Result(transfer_cycles=transfer_cycles, rates=rates)


def render(result: Figure1Result) -> str:
    """Text rendering of the Figure 1 bar groups."""
    rows = []
    for workload, by_strategy in result.rates.items():
        for strategy, r in by_strategy.items():
            rows.append(
                [workload, strategy, r["total"], r["cpu"], r["adjusted"]]
            )
    return format_table(
        ["Workload", "Discipline", "Total MR", "CPU MR", "Adjusted CPU MR"],
        rows,
        title=(
            "Figure 1: Total and CPU miss rates "
            f"({result.transfer_cycles}-cycle data transfer)"
        ),
    )


def render_chart(result: Figure1Result) -> str:
    """Bar-chart rendering in the shape of the paper's Figure 1."""
    from repro.metrics.charts import bar_chart

    sections = []
    peak = max(
        rates["total"]
        for by_strategy in result.rates.values()
        for rates in by_strategy.values()
    )
    for workload, by_strategy in result.rates.items():
        bars = {}
        for strategy, rates in by_strategy.items():
            bars[f"{strategy} total"] = rates["total"]
            bars[f"{strategy} cpu"] = rates["cpu"]
            bars[f"{strategy} adj"] = rates["adjusted"]
        sections.append(bar_chart(bars, title=f"-- {workload} --", max_value=peak))
    header = (
        "Figure 1: Total and CPU miss rates "
        f"({result.transfer_cycles}-cycle data transfer)"
    )
    return header + "\n" + "\n\n".join(sections)
