"""Figure 3: sources of CPU misses in Topopt, Pverify and Mp3d.

The paper's Figure 3 decomposes the CPU misses of three workloads (at
the 8-cycle data-transfer latency) into five stacked components:

* non-sharing, not prefetched
* invalidation, not prefetched
* non-sharing, prefetched (the prefetched data was lost to conflicts)
* invalidation, prefetched (the prefetched data was invalidated)
* prefetch in progress

Shapes to reproduce (sections 4.3-4.4):

* invalidation misses are the largest CPU-miss component under the
  uniprocessor-oriented strategies and are almost entirely
  *not prefetched* (the oracle cannot predict them); only PWS attacks
  them;
* LPD eliminates most prefetch-in-progress misses but pays with more
  conflict (non-sharing) misses;
* Topopt keeps a significant non-sharing residue (prefetch-introduced
  conflicts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.experiments.runner import DEFAULT_FIGURE_LATENCY, ExperimentRunner
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import ALL_STRATEGIES
from repro.metrics.results import MissCounts

__all__ = ["FIGURE3_WORKLOADS", "Figure3Result", "render", "render_chart", "run"]

#: The workloads shown in the paper's Figure 3 panels (a), (b), (c).
FIGURE3_WORKLOADS: tuple[str, ...] = ("Topopt", "Pverify", "Mp3d")


@dataclass
class Figure3Result:
    """``components[workload][strategy]`` -> per-1000-references rates."""

    transfer_cycles: int
    components: dict[str, dict[str, dict[str, float]]]


def _component_rates(mc: MissCounts, refs: int) -> dict[str, float]:
    per = 1000.0 / refs if refs else 0.0
    return {
        "nonsharing_unprefetched": mc.nonsharing_unprefetched * per,
        "invalidation_unprefetched": (
            mc.inval_true_unprefetched + mc.inval_false_unprefetched
        )
        * per,
        "nonsharing_prefetched": mc.nonsharing_prefetched * per,
        "invalidation_prefetched": (mc.inval_true_prefetched + mc.inval_false_prefetched)
        * per,
        "prefetch_in_progress": mc.prefetch_in_progress * per,
    }


def run(
    runner: ExperimentRunner | None = None,
    transfer_cycles: int = DEFAULT_FIGURE_LATENCY,
    workloads: tuple[str, ...] = FIGURE3_WORKLOADS,
) -> Figure3Result:
    """Collect the five miss components per strategy and workload."""
    runner = runner or ExperimentRunner()
    machine = runner.base_machine().with_transfer_cycles(transfer_cycles)
    components: dict[str, dict[str, dict[str, float]]] = {}
    for workload in workloads:
        components[workload] = {}
        for strategy in ALL_STRATEGIES:
            result = runner.run(workload, strategy, machine)
            components[workload][strategy.name] = _component_rates(
                result.miss_counts, result.demand_refs
            )
    return Figure3Result(transfer_cycles=transfer_cycles, components=components)


def render(result: Figure3Result) -> str:
    """Text rendering of the stacked components (per 1000 references)."""
    headers = [
        "Workload",
        "Discipline",
        "ns/unpref",
        "inv/unpref",
        "ns/pref'd",
        "inv/pref'd",
        "pf-in-prog",
        "total",
    ]
    rows = []
    for workload, by_strategy in result.components.items():
        for strategy, comp in by_strategy.items():
            total = sum(comp.values())
            rows.append(
                [
                    workload,
                    strategy,
                    round(comp["nonsharing_unprefetched"], 2),
                    round(comp["invalidation_unprefetched"], 2),
                    round(comp["nonsharing_prefetched"], 2),
                    round(comp["invalidation_prefetched"], 2),
                    round(comp["prefetch_in_progress"], 2),
                    round(total, 2),
                ]
            )
    return format_table(
        headers,
        rows,
        title=(
            "Figure 3: Sources of CPU misses, per 1000 demand references "
            f"({result.transfer_cycles}-cycle data transfer)"
        ),
    )


def render_chart(result: Figure3Result) -> str:
    """Stacked-bar rendering in the shape of the paper's Figure 3."""
    from repro.metrics.charts import stacked_bar_chart

    panels = []
    for workload, by_strategy in result.components.items():
        data = {
            strategy: {
                "ns/unpref": comps["nonsharing_unprefetched"],
                "inv/unpref": comps["invalidation_unprefetched"],
                "ns/pref": comps["nonsharing_prefetched"],
                "inv/pref": comps["invalidation_prefetched"],
                "in-prog": comps["prefetch_in_progress"],
            }
            for strategy, comps in by_strategy.items()
        }
        panels.append(
            stacked_bar_chart(
                data,
                title=f"-- {workload}: CPU misses per 1000 refs --",
            )
        )
    return "\n\n".join(panels)
