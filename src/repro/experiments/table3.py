"""Table 3: total invalidation and false-sharing miss rates.

The paper's Table 3 reports, per workload (without prefetching), the
total invalidation miss rate and the portion of it attributable to
false sharing.  The headline shape: *for most of the benchmarks, over
half of the invalidation misses are false sharing* -- which motivates
the restructuring experiments of Tables 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.experiments.runner import DEFAULT_FIGURE_LATENCY, ExperimentRunner
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import NP
from repro.workloads.registry import ALL_WORKLOAD_NAMES

__all__ = ["Table3Result", "render", "run"]


@dataclass
class Table3Result:
    """Per workload: invalidation MR, false-sharing MR, false fraction."""

    transfer_cycles: int
    rows: dict[str, dict[str, float]]

    def false_fraction(self, workload: str) -> float:
        """False-sharing misses as a fraction of invalidation misses."""
        row = self.rows[workload]
        return row["false_sharing_mr"] / row["invalidation_mr"] if row["invalidation_mr"] else 0.0


def run(
    runner: ExperimentRunner | None = None,
    transfer_cycles: int = DEFAULT_FIGURE_LATENCY,
) -> Table3Result:
    """Measure NP invalidation/false-sharing rates for all workloads."""
    runner = runner or ExperimentRunner()
    machine = runner.base_machine().with_transfer_cycles(transfer_cycles)
    rows: dict[str, dict[str, float]] = {}
    for workload in ALL_WORKLOAD_NAMES:
        result = runner.run(workload, NP, machine)
        rows[workload] = {
            "invalidation_mr": result.invalidation_miss_rate,
            "false_sharing_mr": result.false_sharing_miss_rate,
        }
    return Table3Result(transfer_cycles=transfer_cycles, rows=rows)


def render(result: Table3Result) -> str:
    """Text rendering in the paper's Table 3 shape."""
    rows = []
    for workload, row in result.rows.items():
        rows.append(
            [
                workload,
                round(row["invalidation_mr"], 4),
                round(row["false_sharing_mr"], 4),
                round(result.false_fraction(workload), 2),
            ]
        )
    return format_table(
        ["Workload", "Total Invalidation MR", "Total False Sharing MR", "False fraction"],
        rows,
        title="Table 3: Total invalidation and false sharing miss rates",
    )
