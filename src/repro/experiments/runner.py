"""Shared experiment execution with trace and result caching.

An :class:`ExperimentRunner` pins the experimental frame (CPU count,
seed, workload scale) and memoises:

* *clean traces* per (workload, restructured) -- generation is pure
  Python and worth avoiding per strategy (a small LRU bounds memory);
* *simulation results* per (workload, restructured, strategy, machine)
  -- Figure 1, Table 2, Figure 2 and Figure 3 all share runs.

Annotated (prefetch-inserted) traces are *not* cached: they are cheap
to rebuild relative to simulation and expensive to hold.

On top of the in-memory memo the runner optionally layers

* a **persistent disk cache** (``disk_cache=``, see
  :mod:`repro.perf.diskcache`): results keyed by a content hash of the
  full simulation input -- workload spec, scale, seed, strategy,
  machine config and :data:`~repro.sim.engine.ENGINE_VERSION` -- so a
  repeated bench session re-simulates nothing; and
* a **process-parallel backend** (``max_workers=``): batch entry
  points (:meth:`run_many`, and :meth:`sweep`/:meth:`compare` which
  route through it) fan uncached simulations out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Each simulation
  is a pure function of its inputs, so parallel results are
  *byte-identical* to serial ones; results always come back in job
  order, never completion order; and
* **fleet telemetry** (``telemetry=`` on :meth:`run_many`, see
  :mod:`repro.telemetry`): a run ledger entry per simulation, live
  worker heartbeats with a stall watchdog, per-run profiling and a
  metrics registry.  Strictly opt-in -- without a
  :class:`~repro.telemetry.fleet.TelemetryConfig` the runner takes its
  original code paths and results are bit-identical.  Worker failures
  in a telemetered batch never hang the pool or silently drop grid
  points: every failed point is recorded (ledger ``outcome: error`` /
  ``timeout``) and surfaced in one structured
  :class:`~repro.telemetry.fleet.FleetError`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import signal
import sys
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.common.config import MachineConfig, SimulationConfig
from repro.metrics.compare import RunComparison, compare_runs
from repro.metrics.results import RunMetrics
from repro.perf.diskcache import ResultDiskCache, content_key
from repro.prefetch.insertion import insert_prefetches
from repro.prefetch.strategies import NP, PrefetchStrategy
from repro.sim.engine import ENGINE_VERSION, simulate
from repro.telemetry.fleet import (
    FleetError,
    JobFailure,
    TelemetryConfig,
    run_telemetered_job,
)
from repro.telemetry.heartbeat import FleetMonitor, Watchdog, render_fleet_progress
from repro.telemetry.ledger import LedgerEntry
from repro.trace.stream import MultiTrace
from repro.workloads.registry import generate_workload

__all__ = [
    "DEFAULT_TRANSFER_LATENCIES",
    "ExperimentRunner",
    "StrategyResult",
    "run_strategy",
]

#: The paper's data-bus transfer-latency sweep (Table 2, Figure 2).
DEFAULT_TRANSFER_LATENCIES: tuple[int, ...] = (4, 8, 16, 32)

#: Transfer latency used by the fixed-machine experiments (Figures 1, 3;
#: Tables 3, 4).
DEFAULT_FIGURE_LATENCY = 8


@dataclass(frozen=True)
class StrategyResult:
    """A strategy run bundled with its NP baseline and the comparison."""

    run: RunMetrics
    baseline: RunMetrics
    comparison: RunComparison


def _strategy_key(strategy: PrefetchStrategy) -> tuple:
    # PrefetchStrategy is a frozen dataclass: its equality/hash already
    # covers every field, so the instance itself is the cache key.
    return (strategy,)


def _machine_key(machine: MachineConfig) -> tuple:
    return tuple(sorted(machine.describe().items()))


#: Per-worker-process clean-trace LRU (workers are reused across jobs,
#: and jobs for the same workload shouldn't regenerate its trace).
_WORKER_TRACES: OrderedDict[tuple, MultiTrace] = OrderedDict()
_WORKER_TRACE_LIMIT = 3


def _simulate_job(
    workload: str,
    restructured: bool,
    num_cpus: int,
    seed: int,
    scale: float,
    strategy: PrefetchStrategy,
    machine: MachineConfig,
    sim_config: SimulationConfig | None = None,
) -> dict[str, Any]:
    """Run one simulation in a worker process.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it.  Returns the metrics as a plain dict (picklable and
    exactly what the disk cache stores) rather than a
    :class:`RunMetrics`, keeping the wire format identical for
    parallel, cached and remote results.
    """
    tkey = (workload, restructured, num_cpus, seed, scale)
    trace = _WORKER_TRACES.get(tkey)
    if trace is None:
        trace = generate_workload(
            workload,
            num_cpus=num_cpus,
            seed=seed,
            scale=scale,
            restructured=restructured,
        )
        _WORKER_TRACES[tkey] = trace
        while len(_WORKER_TRACES) > _WORKER_TRACE_LIMIT:
            _WORKER_TRACES.popitem(last=False)
    else:
        _WORKER_TRACES.move_to_end(tkey)
    annotated, _report = insert_prefetches(trace, strategy, machine.cache)
    label = strategy.name if not restructured else f"{strategy.name}+restructured"
    result = simulate(
        annotated,
        machine,
        strategy_name=label,
        sim_config=sim_config if sim_config is not None else SimulationConfig(),
        adaptive=strategy.adaptive_config(),
    )
    return result.to_dict()


class ExperimentRunner:
    """Caching façade over generate → insert → simulate.

    Args:
        num_cpus: processors for every run.
        seed: workload-generation seed.
        scale: workload work multiplier (trace length knob).
        trace_cache_size: clean traces kept in memory (LRU).
        max_workers: worker processes for the batch entry points
            (:meth:`run_many`, :meth:`sweep`, :meth:`compare`).  None,
            0 or 1 keeps everything serial and in-process (default).
        disk_cache: directory for the persistent result cache (see
            :mod:`repro.perf.diskcache`); None disables it.
        sim_config: engine-level options applied to every run.  When
            ``sim_config.audit`` is set the disk cache is bypassed in
            both directions: a cache hit would skip the audit entirely,
            and stored entries must keep the unaudited wire format.
            ``sim_config.observe`` bypasses it for the same reason (a
            hit would return a result with no telemetry attached).
    """

    def __init__(
        self,
        num_cpus: int = 12,
        seed: int = 42,
        scale: float = 1.0,
        trace_cache_size: int = 3,
        max_workers: int | None = None,
        disk_cache: str | Path | None = None,
        sim_config: SimulationConfig | None = None,
    ) -> None:
        self.num_cpus = num_cpus
        self.seed = seed
        self.scale = scale
        self.max_workers = max_workers
        self.sim_config = sim_config if sim_config is not None else SimulationConfig()
        self.disk_cache = ResultDiskCache(disk_cache) if disk_cache else None
        self._trace_cache: OrderedDict[tuple, MultiTrace] = OrderedDict()
        self._trace_cache_size = trace_cache_size
        self._results: dict[tuple, RunMetrics] = {}
        self._trace_metadata: dict[tuple, dict[str, Any]] = {}

    def base_machine(self) -> MachineConfig:
        """The default machine for this runner's frame (matching CPUs)."""
        return MachineConfig(num_cpus=self.num_cpus)

    # --------------------------------------------------------------- traces

    def clean_trace(self, workload: str, restructured: bool = False) -> MultiTrace:
        """The NP (un-annotated) trace for a workload variant (cached)."""
        key = (workload, restructured)
        trace = self._trace_cache.get(key)
        if trace is not None:
            self._trace_cache.move_to_end(key)
            return trace
        trace = generate_workload(
            workload,
            num_cpus=self.num_cpus,
            seed=self.seed,
            scale=self.scale,
            restructured=restructured,
        )
        self._trace_cache[key] = trace
        self._trace_metadata[key] = dict(trace.metadata)
        while len(self._trace_cache) > self._trace_cache_size:
            self._trace_cache.popitem(last=False)
        return trace

    def trace_metadata(self, workload: str, restructured: bool = False) -> dict[str, Any]:
        """Metadata of a previously generated trace (generates if needed)."""
        key = (workload, restructured)
        if key not in self._trace_metadata:
            self.clean_trace(workload, restructured)
        return self._trace_metadata[key]

    # ------------------------------------------------------------ disk cache

    def _cache_payload(
        self,
        workload: str,
        strategy: PrefetchStrategy,
        machine: MachineConfig,
        restructured: bool,
    ) -> dict[str, Any]:
        """The full simulation input, as hashed into the cache key.

        Every field that can change the result is present -- including
        ``engine_version``, so behavior-altering engine changes never
        serve stale entries.
        """
        return {
            "workload": workload,
            "restructured": restructured,
            "num_cpus": self.num_cpus,
            "seed": self.seed,
            "scale": self.scale,
            "strategy": asdict(strategy),
            "machine": machine.describe(),
            "engine_version": ENGINE_VERSION,
        }

    def _disk_load(
        self,
        workload: str,
        strategy: PrefetchStrategy,
        machine: MachineConfig,
        restructured: bool,
    ) -> RunMetrics | None:
        if self.disk_cache is None or self.sim_config.audit or self.sim_config.observe:
            return None
        payload = self._cache_payload(workload, strategy, machine, restructured)
        data = self.disk_cache.load(content_key(payload))
        return RunMetrics.from_dict(data) if data is not None else None

    def _disk_store(
        self,
        workload: str,
        strategy: PrefetchStrategy,
        machine: MachineConfig,
        restructured: bool,
        result: RunMetrics,
    ) -> None:
        if self.disk_cache is None or self.sim_config.audit or self.sim_config.observe:
            return
        payload = self._cache_payload(workload, strategy, machine, restructured)
        self.disk_cache.store(content_key(payload), result.to_dict(), payload)

    # ----------------------------------------------------------------- runs

    def run(
        self,
        workload: str,
        strategy: PrefetchStrategy,
        machine: MachineConfig,
        restructured: bool = False,
    ) -> RunMetrics:
        """Simulate one configuration (memoised, disk-cached)."""
        key = (workload, restructured, _strategy_key(strategy), _machine_key(machine))
        cached = self._results.get(key)
        if cached is not None:
            return cached
        result = self._disk_load(workload, strategy, machine, restructured)
        if result is None:
            clean = self.clean_trace(workload, restructured)
            annotated, _report = insert_prefetches(clean, strategy, machine.cache)
            label = strategy.name if not restructured else f"{strategy.name}+restructured"
            result = simulate(
                annotated,
                machine,
                strategy_name=label,
                sim_config=self.sim_config,
                adaptive=strategy.adaptive_config(),
            )
            self._disk_store(workload, strategy, machine, restructured, result)
        self._results[key] = result
        return result

    def run_many(
        self,
        jobs: list[tuple],
        telemetry: TelemetryConfig | None = None,
    ) -> list[RunMetrics]:
        """Simulate a batch of configurations, in parallel if configured.

        ``jobs`` holds ``(workload, strategy, machine)`` or
        ``(workload, strategy, machine, restructured)`` tuples.  Memo
        and disk-cache hits are resolved first; only genuinely new
        configurations are simulated (each distinct one exactly once,
        duplicates collapse).  With ``max_workers > 1`` the new work
        fans out over a process pool; results are returned in **job
        order** regardless of completion order, and -- simulation being
        a pure function -- are byte-identical to a serial run.

        With a :class:`~repro.telemetry.fleet.TelemetryConfig` the
        batch additionally appends a run-ledger entry per disk hit and
        per fresh simulation, streams worker heartbeats to a live fleet
        progress line with a stall watchdog, optionally profiles each
        worker run, and updates the config's metrics registry.  A
        worker failure no longer aborts the batch mid-flight: every
        failed grid point is recorded in the ledger (``outcome:
        error``/``timeout``) and collected into one
        :class:`~repro.telemetry.fleet.FleetError` raised after all
        surviving points have been stored.
        """
        norm: list[tuple[str, PrefetchStrategy, MachineConfig, bool]] = []
        for job in jobs:
            if len(job) == 3:
                workload, strategy, machine = job
                restructured = False
            else:
                workload, strategy, machine, restructured = job
            norm.append((workload, strategy, machine, restructured))

        metrics = telemetry.metrics() if telemetry is not None else None
        results: list[RunMetrics | None] = [None] * len(norm)
        todo: dict[tuple, list[int]] = {}
        recorded: set[tuple] = set()
        for i, (workload, strategy, machine, restructured) in enumerate(norm):
            key = (workload, restructured, _strategy_key(strategy), _machine_key(machine))
            cached = self._results.get(key)
            hit_kind = "memo"
            if cached is None:
                cached = self._disk_load(workload, strategy, machine, restructured)
                if cached is not None:
                    self._results[key] = cached
                    hit_kind = "hit"
            if cached is not None:
                results[i] = cached
                if telemetry is not None and key not in recorded:
                    recorded.add(key)
                    metrics["cache"].inc(result=hit_kind)
                    if hit_kind == "hit":
                        # Memo hits stay out of the ledger: they were
                        # ledgered when first simulated or disk-loaded.
                        metrics["runs"].inc(outcome="ok")
                        self._ledger_run(telemetry, norm[i], cached, cache="hit")
            else:
                todo.setdefault(key, []).append(i)

        pending = [(key, norm[indices[0]]) for key, indices in todo.items()]
        if telemetry is not None:
            self._run_pending_telemetered(pending, todo, results, telemetry, metrics)
            return results

        workers = self.max_workers or 1
        if len(pending) > 1 and workers > 1:
            with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                futures = [
                    pool.submit(
                        _simulate_job,
                        workload,
                        restructured,
                        self.num_cpus,
                        self.seed,
                        self.scale,
                        strategy,
                        machine,
                        self.sim_config,
                    )
                    for _key, (workload, strategy, machine, restructured) in pending
                ]
                for (key, job), future in zip(pending, futures):
                    result = RunMetrics.from_dict(future.result())
                    self._disk_store(*job, result)
                    self._results[key] = result
                    for i in todo[key]:
                        results[i] = result
        else:
            for key, (workload, strategy, machine, restructured) in pending:
                result = self.run(workload, strategy, machine, restructured)
                for i in todo[key]:
                    results[i] = result
        return results

    # ------------------------------------------------------- telemetered path

    def _job_label(self, job: tuple) -> str:
        """Human-readable grid-point label for progress and failures."""
        workload, strategy, machine, restructured = job
        name = strategy.name if not restructured else f"{strategy.name}+restructured"
        transfer = machine.describe().get("transfer_cycles", "?")
        return f"{workload}/{name}@{transfer}c"

    def _disk_cache_state(self) -> str:
        """Ledger cache field for a fresh run: ``"miss"`` or ``"off"``."""
        active = (
            self.disk_cache is not None
            and not self.sim_config.audit
            and not self.sim_config.observe
        )
        return "miss" if active else "off"

    def _ledger_run(
        self,
        telemetry: TelemetryConfig,
        job: tuple,
        result: RunMetrics,
        cache: str,
        wall_seconds: float = 0.0,
        events: int = 0,
        worker_pid: int = 0,
    ) -> None:
        """Append one successful run to the ledger (no-op without one)."""
        if telemetry.ledger is None:
            return
        workload, strategy, machine, restructured = job
        trace_ctx = telemetry.trace_context(self._job_label(job))
        telemetry.ledger.append(
            LedgerEntry(
                config_key=content_key(
                    self._cache_payload(workload, strategy, machine, restructured)
                ),
                workload=workload,
                restructured=restructured,
                strategy=strategy.name,
                machine=machine.describe(),
                num_cpus=self.num_cpus,
                seed=self.seed,
                scale=self.scale,
                engine_version=ENGINE_VERSION,
                outcome="ok",
                cache=cache,
                wall_seconds=round(wall_seconds, 6),
                events=events,
                events_per_sec=round(events / wall_seconds, 3) if wall_seconds > 0 else 0.0,
                worker_pid=worker_pid or os.getpid(),
                summary=result.describe(),
                trace_id=trace_ctx[0] if trace_ctx is not None else None,
            )
        )

    def _ledger_failure(
        self,
        telemetry: TelemetryConfig,
        job: tuple,
        outcome: str,
        message: str,
    ) -> None:
        """Append one failed run to the ledger (no-op without one)."""
        if telemetry.ledger is None:
            return
        workload, strategy, machine, restructured = job
        trace_ctx = telemetry.trace_context(self._job_label(job))
        telemetry.ledger.append(
            LedgerEntry(
                config_key=content_key(
                    self._cache_payload(workload, strategy, machine, restructured)
                ),
                workload=workload,
                restructured=restructured,
                strategy=strategy.name,
                machine=machine.describe(),
                num_cpus=self.num_cpus,
                seed=self.seed,
                scale=self.scale,
                engine_version=ENGINE_VERSION,
                outcome=outcome,
                cache="off",
                worker_pid=os.getpid(),
                error=message,
                trace_id=trace_ctx[0] if trace_ctx is not None else None,
            )
        )

    def _accept_envelope(
        self,
        key: tuple,
        job: tuple,
        envelope: dict[str, Any],
        todo: dict[tuple, list[int]],
        results: list[RunMetrics | None],
        telemetry: TelemetryConfig,
        metrics: dict[str, Any],
    ) -> None:
        """Store one telemetered worker result: memo, disk, ledger, metrics."""
        result = RunMetrics.from_dict(envelope["metrics"])
        self._disk_store(*job, result)
        self._results[key] = result
        for i in todo[key]:
            results[i] = result
        wall = envelope["wall_seconds"]
        events = envelope["events"]
        cache_state = self._disk_cache_state()
        metrics["runs"].inc(outcome="ok")
        metrics["cache"].inc(result=cache_state)
        metrics["events"].inc(events)
        metrics["wall"].observe(wall)
        if telemetry.profile:
            telemetry.merged_profile.merge(envelope["profile_rows"])
        self._ledger_run(
            telemetry,
            job,
            result,
            cache=cache_state,
            wall_seconds=wall,
            events=events,
            worker_pid=envelope["worker_pid"],
        )

    def _run_pending_telemetered(
        self,
        pending: list[tuple[tuple, tuple]],
        todo: dict[tuple, list[int]],
        results: list[RunMetrics | None],
        telemetry: TelemetryConfig,
        metrics: dict[str, Any],
    ) -> None:
        """Execute the uncached grid points with full fleet telemetry.

        Parallel batches stream heartbeats over a manager queue; serial
        ones over an in-process queue (same monitor, same progress
        line).  ``job_timeout`` and the stall watchdog only *kill* on
        the parallel backend -- in-process there is no one to kill --
        but stalls are still flagged.  Failures are collected, ledgered
        and raised once at the end as a :class:`FleetError`; surviving
        points are stored normally first.
        """
        if not pending:
            return
        labels = {j: self._job_label(job) for j, (_key, job) in enumerate(pending)}
        failures: list[JobFailure] = []
        workers = self.max_workers or 1
        parallel = len(pending) > 1 and workers > 1

        def fail(j: int, job: tuple, kind: str, message: str) -> None:
            failures.append(JobFailure(index=j, label=labels[j], kind=kind, message=message))
            metrics["runs"].inc(outcome=kind)
            self._ledger_failure(telemetry, job, kind, message)

        watchdog = Watchdog(
            stall_timeout=telemetry.stall_timeout,
            kill=telemetry.kill_stalled and parallel,
        )
        render = render_fleet_progress if telemetry.progress else None

        if parallel:
            manager = multiprocessing.Manager()
            beat_queue: Any = manager.Queue()
        else:
            manager = None
            beat_queue = queue_module.SimpleQueue()
        monitor = FleetMonitor(
            beat_queue,
            labels,
            watchdog=watchdog,
            render=render,
            span_sink=telemetry.span_sink,
        )
        if telemetry.monitor_hook is not None:
            try:
                telemetry.monitor_hook(monitor)
            except Exception:
                pass  # the hook is observability; it never fails the batch
        try:
            with monitor:
                if parallel:
                    self._drain_telemetered_pool(
                        pending, todo, results, telemetry, metrics, beat_queue, monitor, fail
                    )
                else:
                    for j, (key, job) in enumerate(pending):
                        workload, strategy, machine, restructured = job
                        try:
                            envelope = run_telemetered_job(
                                workload,
                                restructured,
                                self.num_cpus,
                                self.seed,
                                self.scale,
                                strategy,
                                machine,
                                self.sim_config,
                                j,
                                labels[j],
                                queue=beat_queue,
                                heartbeat_interval=telemetry.heartbeat_interval,
                                profile=telemetry.profile,
                                trace_ctx=telemetry.trace_context(labels[j]),
                            )
                        except Exception as exc:
                            fail(j, job, "error", str(exc) or type(exc).__name__)
                        else:
                            self._accept_envelope(
                                key, job, envelope, todo, results, telemetry, metrics
                            )
                        monitor.mark_done(j)
        finally:
            if manager is not None:
                manager.shutdown()
            if telemetry.progress:
                sys.stderr.write("\n")
                sys.stderr.flush()
        if failures:
            heads = "; ".join(f"{f.label}: {f.message}" for f in failures[:3])
            more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
            raise FleetError(
                f"{len(failures)} of {len(pending)} grid points failed -- {heads}{more}",
                failures,
            )

    def _drain_telemetered_pool(
        self,
        pending: list[tuple[tuple, tuple]],
        todo: dict[tuple, list[int]],
        results: list[RunMetrics | None],
        telemetry: TelemetryConfig,
        metrics: dict[str, Any],
        beat_queue: Any,
        monitor: FleetMonitor,
        fail: Any,
    ) -> None:
        """Fan pending jobs over a pool; never hang on a dead worker.

        Each future is awaited with ``telemetry.job_timeout``; on expiry
        the worker (known from its heartbeats) is killed so pool
        shutdown cannot block forever.  A killed or crashed worker
        breaks the pool -- its own future and any still-unfinished ones
        raise :class:`BrokenProcessPool` and are recorded as structured
        failures (``timeout`` for jobs the watchdog flagged, ``error``
        otherwise); completed results are kept.
        """
        labels = {j: self._job_label(job) for j, (_key, job) in enumerate(pending)}
        workers = self.max_workers or 1
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = [
                pool.submit(
                    run_telemetered_job,
                    workload,
                    restructured,
                    self.num_cpus,
                    self.seed,
                    self.scale,
                    strategy,
                    machine,
                    self.sim_config,
                    j,
                    labels[j],
                    beat_queue,
                    telemetry.heartbeat_interval,
                    telemetry.profile,
                    telemetry.trace_context(labels[j]),
                )
                for j, (_key, (workload, strategy, machine, restructured)) in enumerate(
                    pending
                )
            ]
            for j, ((key, job), future) in enumerate(zip(pending, futures)):
                try:
                    envelope = future.result(timeout=telemetry.job_timeout)
                except FuturesTimeout:
                    fail(
                        j,
                        job,
                        "timeout",
                        f"no result within {telemetry.job_timeout:g}s",
                    )
                    pid = monitor.jobs[j].pid
                    if pid:
                        try:
                            os.kill(pid, signal.SIGKILL)
                        except OSError:
                            pass
                except BrokenProcessPool:
                    stalled = monitor.jobs[j].stalled
                    fail(
                        j,
                        job,
                        "timeout" if stalled else "error",
                        "worker killed after heartbeat stall"
                        if stalled
                        else "worker pool broke (a worker process died)",
                    )
                except Exception as exc:
                    fail(j, job, "error", str(exc) or type(exc).__name__)
                else:
                    self._accept_envelope(
                        key, job, envelope, todo, results, telemetry, metrics
                    )
                monitor.mark_done(j)

    def compare(
        self,
        workload: str,
        strategy: PrefetchStrategy,
        machine: MachineConfig,
        restructured: bool = False,
    ) -> StrategyResult:
        """Run a strategy and its NP baseline; bundle the comparison.

        The baseline shares the restructuring flag: restructured runs are
        compared against the restructured NP run, as in Table 5.
        """
        baseline, run = self.run_many(
            [
                (workload, NP, machine, restructured),
                (workload, strategy, machine, restructured),
            ]
        )
        return StrategyResult(run=run, baseline=baseline, comparison=compare_runs(baseline, run))

    def sweep(
        self,
        workload: str,
        strategies: tuple[PrefetchStrategy, ...],
        machine: MachineConfig,
        transfer_latencies: tuple[int, ...] = DEFAULT_TRANSFER_LATENCIES,
        restructured: bool = False,
    ) -> dict[int, dict[str, RunMetrics]]:
        """Run strategies across the bus-latency sweep.

        Returns ``{transfer_cycles: {strategy_name: RunMetrics}}``.
        The grid goes through :meth:`run_many`, so a parallel runner
        simulates its points concurrently.
        """
        flat = self.run_many(
            [
                (workload, s, machine.with_transfer_cycles(cycles), restructured)
                for cycles in transfer_latencies
                for s in strategies
            ]
        )
        out: dict[int, dict[str, RunMetrics]] = {}
        it = iter(flat)
        for cycles in transfer_latencies:
            out[cycles] = {s.name: next(it) for s in strategies}
        return out

    @property
    def cached_run_count(self) -> int:
        """Number of memoised simulation results."""
        return len(self._results)


_DEFAULT_RUNNER: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """A process-wide shared runner (used by :func:`run_strategy`)."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = ExperimentRunner()
    return _DEFAULT_RUNNER


def run_strategy(
    workload: str,
    strategy: PrefetchStrategy,
    machine: MachineConfig | None = None,
    restructured: bool = False,
) -> StrategyResult:
    """One-call convenience: run a strategy vs. NP on the default runner."""
    return default_runner().compare(
        workload, strategy, machine or MachineConfig(), restructured
    )
