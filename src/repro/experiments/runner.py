"""Shared experiment execution with trace and result caching.

An :class:`ExperimentRunner` pins the experimental frame (CPU count,
seed, workload scale) and memoises:

* *clean traces* per (workload, restructured) -- generation is pure
  Python and worth avoiding per strategy (a small LRU bounds memory);
* *simulation results* per (workload, restructured, strategy, machine)
  -- Figure 1, Table 2, Figure 2 and Figure 3 all share runs.

Annotated (prefetch-inserted) traces are *not* cached: they are cheap
to rebuild relative to simulation and expensive to hold.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.common.config import MachineConfig, SimulationConfig
from repro.metrics.compare import RunComparison, compare_runs
from repro.metrics.results import RunMetrics
from repro.prefetch.insertion import insert_prefetches
from repro.prefetch.strategies import NP, PrefetchStrategy
from repro.sim.engine import simulate
from repro.trace.stream import MultiTrace
from repro.workloads.registry import generate_workload

__all__ = [
    "DEFAULT_TRANSFER_LATENCIES",
    "ExperimentRunner",
    "StrategyResult",
    "run_strategy",
]

#: The paper's data-bus transfer-latency sweep (Table 2, Figure 2).
DEFAULT_TRANSFER_LATENCIES: tuple[int, ...] = (4, 8, 16, 32)

#: Transfer latency used by the fixed-machine experiments (Figures 1, 3;
#: Tables 3, 4).
DEFAULT_FIGURE_LATENCY = 8


@dataclass(frozen=True)
class StrategyResult:
    """A strategy run bundled with its NP baseline and the comparison."""

    run: RunMetrics
    baseline: RunMetrics
    comparison: RunComparison


def _strategy_key(strategy: PrefetchStrategy) -> tuple:
    # PrefetchStrategy is a frozen dataclass: its equality/hash already
    # covers every field, so the instance itself is the cache key.
    return (strategy,)


def _machine_key(machine: MachineConfig) -> tuple:
    return tuple(sorted(machine.describe().items()))


class ExperimentRunner:
    """Caching façade over generate → insert → simulate.

    Args:
        num_cpus: processors for every run.
        seed: workload-generation seed.
        scale: workload work multiplier (trace length knob).
        trace_cache_size: clean traces kept in memory (LRU).
    """

    def __init__(
        self,
        num_cpus: int = 12,
        seed: int = 42,
        scale: float = 1.0,
        trace_cache_size: int = 3,
    ) -> None:
        self.num_cpus = num_cpus
        self.seed = seed
        self.scale = scale
        self._trace_cache: OrderedDict[tuple, MultiTrace] = OrderedDict()
        self._trace_cache_size = trace_cache_size
        self._results: dict[tuple, RunMetrics] = {}
        self._trace_metadata: dict[tuple, dict[str, Any]] = {}

    def base_machine(self) -> MachineConfig:
        """The default machine for this runner's frame (matching CPUs)."""
        return MachineConfig(num_cpus=self.num_cpus)

    # --------------------------------------------------------------- traces

    def clean_trace(self, workload: str, restructured: bool = False) -> MultiTrace:
        """The NP (un-annotated) trace for a workload variant (cached)."""
        key = (workload, restructured)
        trace = self._trace_cache.get(key)
        if trace is not None:
            self._trace_cache.move_to_end(key)
            return trace
        trace = generate_workload(
            workload,
            num_cpus=self.num_cpus,
            seed=self.seed,
            scale=self.scale,
            restructured=restructured,
        )
        self._trace_cache[key] = trace
        self._trace_metadata[key] = dict(trace.metadata)
        while len(self._trace_cache) > self._trace_cache_size:
            self._trace_cache.popitem(last=False)
        return trace

    def trace_metadata(self, workload: str, restructured: bool = False) -> dict[str, Any]:
        """Metadata of a previously generated trace (generates if needed)."""
        key = (workload, restructured)
        if key not in self._trace_metadata:
            self.clean_trace(workload, restructured)
        return self._trace_metadata[key]

    # ----------------------------------------------------------------- runs

    def run(
        self,
        workload: str,
        strategy: PrefetchStrategy,
        machine: MachineConfig,
        restructured: bool = False,
    ) -> RunMetrics:
        """Simulate one configuration (memoised)."""
        key = (workload, restructured, _strategy_key(strategy), _machine_key(machine))
        cached = self._results.get(key)
        if cached is not None:
            return cached
        clean = self.clean_trace(workload, restructured)
        annotated, _report = insert_prefetches(clean, strategy, machine.cache)
        label = strategy.name if not restructured else f"{strategy.name}+restructured"
        result = simulate(annotated, machine, strategy_name=label, sim_config=SimulationConfig())
        self._results[key] = result
        return result

    def compare(
        self,
        workload: str,
        strategy: PrefetchStrategy,
        machine: MachineConfig,
        restructured: bool = False,
    ) -> StrategyResult:
        """Run a strategy and its NP baseline; bundle the comparison.

        The baseline shares the restructuring flag: restructured runs are
        compared against the restructured NP run, as in Table 5.
        """
        baseline = self.run(workload, NP, machine, restructured)
        run = self.run(workload, strategy, machine, restructured)
        return StrategyResult(run=run, baseline=baseline, comparison=compare_runs(baseline, run))

    def sweep(
        self,
        workload: str,
        strategies: tuple[PrefetchStrategy, ...],
        machine: MachineConfig,
        transfer_latencies: tuple[int, ...] = DEFAULT_TRANSFER_LATENCIES,
        restructured: bool = False,
    ) -> dict[int, dict[str, RunMetrics]]:
        """Run strategies across the bus-latency sweep.

        Returns ``{transfer_cycles: {strategy_name: RunMetrics}}``.
        """
        out: dict[int, dict[str, RunMetrics]] = {}
        for cycles in transfer_latencies:
            m = machine.with_transfer_cycles(cycles)
            out[cycles] = {
                s.name: self.run(workload, s, m, restructured) for s in strategies
            }
        return out

    @property
    def cached_run_count(self) -> int:
        """Number of memoised simulation results."""
        return len(self._results)


_DEFAULT_RUNNER: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """A process-wide shared runner (used by :func:`run_strategy`)."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = ExperimentRunner()
    return _DEFAULT_RUNNER


def run_strategy(
    workload: str,
    strategy: PrefetchStrategy,
    machine: MachineConfig | None = None,
    restructured: bool = False,
) -> StrategyResult:
    """One-call convenience: run a strategy vs. NP on the default runner."""
    return default_runner().compare(
        workload, strategy, machine or MachineConfig(), restructured
    )
