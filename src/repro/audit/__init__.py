"""Runtime sanitizer for the simulation engine.

The audit layer is a flag-gated set of invariant checks wired into the
engine through cheap hooks (``SimulationConfig.audit``).  With audits
disabled the hooks are dead branches and simulated results are
bit-identical; with audits enabled every bus grant, fill completion and
heap pop is cross-checked against the coherence protocol, the engine's
structural bookkeeping, and end-of-run conservation identities.

Three families of checks (see :mod:`repro.audit.sanitizer` for the full
list):

* **coherence** -- at most one MODIFIED copy per block, Illinois
  exclusive (PRIVATE/MODIFIED) uniqueness, no valid remote copy
  coexisting with a MODIFIED owner, no dual main-array/victim residency;
* **structural** -- queued bus fills map 1:1 onto outstanding MSHR
  fills, prefetch-buffer occupancy equals live prefetch fills, heap
  pops are monotone in ``(time, seq)`` (which also validates the
  fast path's deferred pushes), MSHRs and bus queues drain by end of
  run;
* **conservation** -- the seven :class:`~repro.metrics.results.MissCounts`
  buckets sum to the independently counted demand-miss completions,
  busy + stall + sync-wait cycles equal each CPU's finish time, and bus
  busy cycles equal the sum of granted-transaction occupancy slices.

:mod:`repro.audit.grid` defines the 294-configuration verification grid
the ``repro audit`` CLI sweeps with audits enabled.
"""

# Only the report containers are imported eagerly: the sanitizer pulls
# in the processor/metrics stack, and metrics.results imports this
# package for the AuditReport field -- importing the sanitizer here
# would close that cycle.  Use ``repro.audit.sanitizer.EngineAuditor``
# and ``repro.audit.grid`` directly.
from repro.audit.report import AuditReport, AuditViolation

__all__ = ["AuditReport", "AuditViolation"]
