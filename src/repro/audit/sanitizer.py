"""The engine-side sanitizer: invariant checks behind audit hooks.

The engine owns one :class:`EngineAuditor` when ``SimulationConfig.audit``
is set and calls its hooks at the four places simulated state changes
hands: heap pops, bus grants, fill completions, and access completions.
Every hook only *reads* engine state -- an audited run is bit-identical
to an unaudited one by construction.

Check catalogue (names appear in :class:`~repro.audit.report.AuditReport`):

========================================  =====================================
``coherence.single_modified``             at most one MODIFIED copy per block
``coherence.exclusive_unique``            a PRIVATE/MODIFIED copy is the only
                                          valid copy (Illinois exclusivity);
                                          covers "no valid remote copy next to
                                          a MODIFIED owner"
``coherence.dual_residency``              a cache never holds a block valid in
                                          both the main array and its victim
                                          buffer
``coherence.inflight_exclusive``          a granted, unpoisoned exclusive fill
                                          tolerates no other valid copy or
                                          granted fill of the block
``structural.bus_fill_mapping``           queued FILL/FILL_EX transactions map
                                          1:1 onto ungranted MSHR fills
``structural.upgrade_waiter``             every queued UPGRADE has its CPU
                                          stalled on exactly that block
``structural.prefetch_occupancy``         MSHR prefetch-buffer occupancy ==
                                          live prefetch fills
``structural.event_order``                heap pops are strictly increasing in
                                          (time, seq) -- validates both clock
                                          monotonicity and the fast path's
                                          deferred pushes
``structural.mshr_drained``               no outstanding fill survives the run
``structural.bus_drained``                no queued transaction survives the run
``conservation.miss_decomposition``       the seven MissCounts buckets sum to
                                          independently counted miss
                                          completions (per CPU); likewise
                                          sync misses
``conservation.cpu_cycles``               busy + stall + sync-wait == finish
                                          time per CPU, with no negative-stall
                                          clamping
``conservation.bus_cycles``               bus busy cycles == sum of granted
                                          occupancy slices
``conservation.bus_ops``                  granted-transaction count == bus op
                                          count
========================================  =====================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.audit.report import MAX_VIOLATIONS, AuditReport, AuditViolation
from repro.bus.transaction import BusTransaction, TransactionKind
from repro.coherence.protocol import LineState
from repro.sim.processor import CpuStatus, Processor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.sim.engine import SimulationEngine

__all__ = ["EngineAuditor"]

_FILL_KINDS = (TransactionKind.FILL, TransactionKind.FILL_EX)


class EngineAuditor:
    """Invariant checker bound to one :class:`SimulationEngine` run.

    The engine calls the ``on_*``/``after_*`` hooks while running and
    :meth:`finalize` from ``collect_metrics``; every hook is read-only
    with respect to simulated state.
    """

    def __init__(self, engine: "SimulationEngine") -> None:
        self.engine = engine
        self.checks_run: dict[str, int] = {}
        self.violations: list[AuditViolation] = []
        self.truncated = 0
        self._last_item: tuple[int, int] | None = None
        # Independent accounting, reconciled in finalize().
        self._bus_busy = 0
        self._grants = 0
        n = engine.machine.num_cpus
        self._miss_completions = [0] * n
        self._sync_miss_completions = [0] * n

    # ------------------------------------------------------------- recording

    def _tick(self, check: str) -> None:
        self.checks_run[check] = self.checks_run.get(check, 0) + 1

    def _violate(self, check: str, detail: str, cpu: int = -1, block: int = -1) -> None:
        if len(self.violations) >= MAX_VIOLATIONS:
            self.truncated += 1
            return
        self.violations.append(
            AuditViolation(check=check, time=self.engine.now, detail=detail, cpu=cpu, block=block)
        )

    # ----------------------------------------------------------------- hooks

    def on_pop(self, item: tuple[int, int, int, int, int]) -> None:
        """Validate global event order at each heap pop.

        Pops must be strictly increasing in ``(time, seq)``: time can
        never run backwards, and within a timestamp events must retire
        in push order.  The fast path's deferred continuation is handed
        to ``heappushpop`` and re-enters through this same check, so a
        fast-path push that would land out of heap order is caught here.
        """
        self._tick("structural.event_order")
        key = (item[0], item[1])
        if self._last_item is not None and key <= self._last_item:
            self._violate(
                "structural.event_order",
                f"event {key} popped after {self._last_item}",
            )
        self._last_item = key

    def after_grant(self, txn: BusTransaction) -> None:
        """Full invariant pass after one bus grant is applied.

        Runs the per-block coherence sweep for the granted block (the
        only block whose coherence state a grant can change), the
        structural queue/MSHR reconciliation, and accumulates the
        independent bus-occupancy tally.
        """
        self._grants += 1
        self._bus_busy += txn.occupancy
        self.check_block(txn.block)
        self._check_bus_structure()
        for proc in self.engine.procs:
            self._check_prefetch_occupancy(proc)

    def after_fill_done(self, proc: Processor, block: int) -> None:
        """Invariant pass after a fill installs (or installs poisoned)."""
        self.check_block(block)
        self._check_prefetch_occupancy(proc)

    def on_access_complete(self, proc: Processor) -> None:
        """Count completed accesses that were classified as misses.

        This is the independent side of the miss-decomposition identity:
        classification increments the :class:`MissCounts` buckets, and
        completion increments these counters; ``finalize`` requires the
        two to agree exactly.
        """
        if proc.acc_counted:
            if proc.acc_sync:
                self._sync_miss_completions[proc.cpu] += 1
            else:
                self._miss_completions[proc.cpu] += 1

    # ------------------------------------------------------- coherence sweep

    def check_block(self, block: int) -> None:
        """Coherence invariants for one block across all caches.

        Valid copies are collected from every main array and victim
        buffer; granted, unpoisoned in-flight fills count as prospective
        copies for the exclusivity checks (their fill state was fixed at
        grant time, when snoops were applied).
        """
        self._tick("coherence.block")
        copies: list[tuple[int, str, LineState]] = []  # (cpu, where, state)
        inflight: list[tuple[int, LineState]] = []
        for proc in self.engine.procs:
            cpu = proc.cpu
            main = proc.cache.state_of(block)
            victim = proc.cache.victim.state_of(block)
            if main.is_valid:
                copies.append((cpu, "cache", main))
            if victim.is_valid:
                copies.append((cpu, "victim", victim))
            if main.is_valid and victim.is_valid:
                self._violate(
                    "coherence.dual_residency",
                    f"cpu {cpu} holds the block {main.name} in the main array "
                    f"and {victim.name} in the victim buffer",
                    cpu=cpu,
                    block=block,
                )
            fill = proc.mshr.lookup(block)
            if fill is not None and fill.granted and not fill.poisoned:
                inflight.append((cpu, fill.fill_state))

        modified = [(c, w) for c, w, s in copies if s is LineState.MODIFIED]
        if len(modified) > 1:
            self._violate(
                "coherence.single_modified",
                f"{len(modified)} MODIFIED copies: {modified}",
                block=block,
            )
        exclusive = [(c, w, s) for c, w, s in copies if s.is_exclusive]
        if exclusive and (len(copies) > 1 or inflight):
            holders = [(c, w, s.name) for c, w, s in copies]
            self._violate(
                "coherence.exclusive_unique",
                f"exclusive copy coexists with other copies: installed={holders}, "
                f"inflight={[(c, s.name) for c, s in inflight]}",
                cpu=exclusive[0][0],
                block=block,
            )
        for cpu, state in inflight:
            if state.is_exclusive and (copies or len(inflight) > 1):
                self._violate(
                    "coherence.inflight_exclusive",
                    f"granted exclusive fill for cpu {cpu} ({state.name}) coexists "
                    f"with installed={[(c, w, s.name) for c, w, s in copies]}, "
                    f"inflight={[(c, s.name) for c, s in inflight if c != cpu]}",
                    cpu=cpu,
                    block=block,
                )

    # ------------------------------------------------------ structural sweep

    def _check_bus_structure(self) -> None:
        """Queued bus transactions reconcile with MSHRs and CPU stalls."""
        self._tick("structural.bus_fill_mapping")
        engine = self.engine
        pending_fills: dict[tuple[int, int], int] = {}
        for txn in engine.bus.pending_snapshot():
            if txn.kind in _FILL_KINDS:
                key = (txn.cpu, txn.block)
                pending_fills[key] = pending_fills.get(key, 0) + 1
            elif txn.kind is TransactionKind.UPGRADE:
                self._tick("structural.upgrade_waiter")
                proc = engine.procs[txn.cpu]
                if (
                    proc.status is not CpuStatus.STALLED_UPGRADE
                    or proc.waiting_block != txn.block
                ):
                    self._violate(
                        "structural.upgrade_waiter",
                        f"queued UPGRADE but cpu is {proc.status.name} "
                        f"waiting on {proc.waiting_block:#x}",
                        cpu=txn.cpu,
                        block=txn.block,
                    )

        for (cpu, block), count in pending_fills.items():
            if count != 1:
                self._violate(
                    "structural.bus_fill_mapping",
                    f"{count} queued fill transactions for one block",
                    cpu=cpu,
                    block=block,
                )
            fill = engine.procs[cpu].mshr.lookup(block)
            if fill is None:
                self._violate(
                    "structural.bus_fill_mapping",
                    "queued fill transaction with no outstanding MSHR fill",
                    cpu=cpu,
                    block=block,
                )
            elif fill.granted:
                self._violate(
                    "structural.bus_fill_mapping",
                    "queued fill transaction for an already-granted MSHR fill",
                    cpu=cpu,
                    block=block,
                )
        for proc in engine.procs:
            for fill in proc.mshr.outstanding_fills():
                if not fill.granted and (proc.cpu, fill.block) not in pending_fills:
                    self._violate(
                        "structural.bus_fill_mapping",
                        "ungranted MSHR fill with no queued bus transaction",
                        cpu=proc.cpu,
                        block=fill.block,
                    )

    def _check_prefetch_occupancy(self, proc: Processor) -> None:
        """Prefetch-buffer occupancy equals live prefetch fills."""
        self._tick("structural.prefetch_occupancy")
        live = sum(1 for f in proc.mshr.outstanding_fills() if f.is_prefetch)
        if proc.mshr.prefetches_in_flight != live:
            self._violate(
                "structural.prefetch_occupancy",
                f"occupancy counter {proc.mshr.prefetches_in_flight} != "
                f"{live} live prefetch fills",
                cpu=proc.cpu,
            )

    # ------------------------------------------------------------- end of run

    def finalize(self) -> AuditReport:
        """End-of-run conservation identities and final state sweep.

        Called by ``collect_metrics`` after per-CPU stall cycles are
        derived, so the cycle identity checks see the published values.
        """
        engine = self.engine

        for proc in engine.procs:
            m = proc.metrics
            self._tick("conservation.miss_decomposition")
            buckets = m.misses.cpu_misses
            counted = self._miss_completions[proc.cpu]
            if buckets != counted:
                self._violate(
                    "conservation.miss_decomposition",
                    f"MissCounts buckets sum to {buckets} but {counted} "
                    f"demand-miss completions were observed",
                    cpu=proc.cpu,
                )
            if m.sync_misses != self._sync_miss_completions[proc.cpu]:
                self._violate(
                    "conservation.miss_decomposition",
                    f"sync_misses {m.sync_misses} != "
                    f"{self._sync_miss_completions[proc.cpu]} sync-miss completions",
                    cpu=proc.cpu,
                )
            self._tick("conservation.cpu_cycles")
            residual = m.finish_time - m.busy_cycles - m.sync_wait_cycles
            if residual < 0:
                self._violate(
                    "conservation.cpu_cycles",
                    f"busy {m.busy_cycles} + sync-wait {m.sync_wait_cycles} "
                    f"exceed finish time {m.finish_time} (stall clamped)",
                    cpu=proc.cpu,
                )
            elif m.busy_cycles + m.stall_cycles + m.sync_wait_cycles != m.finish_time:
                self._violate(
                    "conservation.cpu_cycles",
                    f"busy {m.busy_cycles} + stall {m.stall_cycles} + "
                    f"sync-wait {m.sync_wait_cycles} != finish {m.finish_time}",
                    cpu=proc.cpu,
                )

        self._tick("conservation.bus_cycles")
        if engine.bus.stats.busy_cycles != self._bus_busy:
            self._violate(
                "conservation.bus_cycles",
                f"bus busy_cycles {engine.bus.stats.busy_cycles} != "
                f"{self._bus_busy} summed granted occupancy slices",
            )
        self._tick("conservation.bus_ops")
        if engine.bus.stats.total_ops != self._grants:
            self._violate(
                "conservation.bus_ops",
                f"bus total_ops {engine.bus.stats.total_ops} != {self._grants} grants",
            )

        self._tick("structural.mshr_drained")
        for proc in engine.procs:
            for fill in proc.mshr.outstanding_fills():
                self._violate(
                    "structural.mshr_drained",
                    f"outstanding fill survived the run (prefetch={fill.is_prefetch})",
                    cpu=proc.cpu,
                    block=fill.block,
                )
            self._check_prefetch_occupancy(proc)
        self._tick("structural.bus_drained")
        for txn in engine.bus.pending_snapshot():
            self._violate(
                "structural.bus_drained",
                f"queued {txn.kind.name} transaction survived the run",
                cpu=txn.cpu,
                block=txn.block,
            )

        # Full sweep: every block resident anywhere at quiescence.
        blocks: set[int] = set()
        for proc in engine.procs:
            blocks.update(proc.cache.resident_blocks())
            blocks.update(proc.cache.victim.valid_blocks())
        for block in sorted(blocks):
            self.check_block(block)

        return AuditReport(
            checks_run=dict(self.checks_run),
            violations=list(self.violations),
            truncated=self.truncated,
        )
