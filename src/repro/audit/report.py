"""Audit result containers.

An :class:`AuditReport` is attached to
:class:`~repro.metrics.results.RunMetrics` when a run executes with
``SimulationConfig.audit`` set.  It records how many times each check
ran (so a silently-never-invoked check is visible) and every violation
found, capped at :data:`MAX_VIOLATIONS` per run to keep pathological
runs bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["AuditReport", "AuditViolation", "MAX_VIOLATIONS"]

#: Violations recorded per run before further ones are only counted.
MAX_VIOLATIONS = 50


@dataclass(frozen=True)
class AuditViolation:
    """One invariant breach observed during a run.

    Attributes:
        check: dotted check name (``coherence.*`` / ``structural.*`` /
            ``conservation.*``).
        time: simulated cycle at which the breach was observed (end-of-
            run checks report the final clock).
        detail: human-readable description of the observed state.
        cpu: processor involved, or -1 when not CPU-specific.
        block: block address involved, or -1 when not block-specific.
    """

    check: str
    time: int
    detail: str
    cpu: int = -1
    block: int = -1

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe rendering."""
        return {
            "check": self.check,
            "time": self.time,
            "detail": self.detail,
            "cpu": self.cpu,
            "block": self.block,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AuditViolation":
        """Exact inverse of :meth:`to_dict`."""
        return cls(**data)

    def __str__(self) -> str:
        where = f" cpu={self.cpu}" if self.cpu >= 0 else ""
        if self.block >= 0:
            where += f" block={self.block:#x}"
        return f"[{self.check}] t={self.time}{where}: {self.detail}"


@dataclass
class AuditReport:
    """Outcome of one audited run.

    Attributes:
        checks_run: invocation count per check name.
        violations: recorded breaches (capped at :data:`MAX_VIOLATIONS`).
        truncated: violations observed beyond the cap (count only).
    """

    checks_run: dict[str, int] = field(default_factory=dict)
    violations: list[AuditViolation] = field(default_factory=list)
    truncated: int = 0

    @property
    def passed(self) -> bool:
        """True when no violation was observed."""
        return not self.violations and self.truncated == 0

    @property
    def total_violations(self) -> int:
        """All observed violations, including uncaptured ones."""
        return len(self.violations) + self.truncated

    @property
    def total_checks(self) -> int:
        """Total check invocations across all check names."""
        return sum(self.checks_run.values())

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe rendering (inverse: :meth:`from_dict`)."""
        return {
            "checks_run": dict(self.checks_run),
            "violations": [v.to_dict() for v in self.violations],
            "truncated": self.truncated,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AuditReport":
        """Exact inverse of :meth:`to_dict`."""
        return cls(
            checks_run=dict(data["checks_run"]),
            violations=[AuditViolation.from_dict(v) for v in data["violations"]],
            truncated=data["truncated"],
        )

    def summary(self) -> str:
        """One-line human summary."""
        if self.passed:
            return f"audit passed ({self.total_checks:,} checks)"
        return (
            f"audit FAILED: {self.total_violations} violation(s) "
            f"over {self.total_checks:,} checks"
        )
