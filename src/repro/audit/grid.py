"""The 294-configuration audited verification grid.

The grid crosses every axis that reaches a distinct engine code path:

* 7 workload variants -- the five paper workloads plus the two
  restructured variants (Topopt, Pverify; section 4.4);
* 7 prefetch strategies -- NP, PREF, EXCL, LPD, PWS plus the PBUF
  (private-only prefetching) and ADAPT (bandwidth-feedback throttling)
  extensions;
* 2 data-bus transfer latencies -- 4 (bandwidth-rich) and 16
  (contended), bracketing the paper's sweep;
* 3 machine variants -- the default Illinois machine, a 4-line victim
  cache, and the MSI protocol ablation.

7 x 7 x 2 x 3 = 294 points, extending the differential grid that
validated the PR 1 fast path.  ``repro audit`` sweeps it with
``SimulationConfig.audit`` enabled and fails on any violation.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.audit.report import AuditReport
from repro.common.config import BusConfig, CacheConfig, MachineConfig, SimulationConfig
from repro.prefetch.insertion import insert_prefetches
from repro.prefetch.strategies import strategy_by_name
from repro.sim.engine import simulate
from repro.trace.stream import MultiTrace
from repro.workloads.registry import (
    ALL_WORKLOAD_NAMES,
    RESTRUCTURABLE_WORKLOAD_NAMES,
    generate_workload,
)

__all__ = [
    "GRID_MACHINE_VARIANTS",
    "GRID_STRATEGY_NAMES",
    "GRID_TRANSFER_LATENCIES",
    "GridPoint",
    "PointOutcome",
    "audit_grid",
    "machine_for",
    "quick_grid",
    "verification_grid",
]

#: Strategy axis (the five paper disciplines plus the PBUF and ADAPT
#: extensions).
GRID_STRATEGY_NAMES: tuple[str, ...] = (
    "NP",
    "PREF",
    "EXCL",
    "LPD",
    "PWS",
    "PBUF",
    "ADAPT",
)

#: Transfer-latency axis (cycles of contended data-bus occupancy).
GRID_TRANSFER_LATENCIES: tuple[int, ...] = (4, 16)

#: Machine-variant axis.
GRID_MACHINE_VARIANTS: tuple[str, ...] = ("illinois", "victim", "msi")

#: Victim-cache lines used by the "victim" machine variant.
_VICTIM_LINES = 4


@dataclass(frozen=True)
class GridPoint:
    """One audited configuration."""

    workload: str
    restructured: bool
    strategy: str
    machine_variant: str
    transfer_cycles: int

    @property
    def label(self) -> str:
        """Compact unique label (progress lines, violation reports)."""
        workload = self.workload + ("+R" if self.restructured else "")
        return (
            f"{workload}/{self.strategy}/{self.machine_variant}"
            f"/t{self.transfer_cycles}"
        )


@dataclass
class PointOutcome:
    """Audit result of one grid point."""

    point: GridPoint
    report: AuditReport
    exec_cycles: int

    @property
    def passed(self) -> bool:
        """True when the point's audit found no violation."""
        return self.report.passed


def machine_for(point: GridPoint, num_cpus: int) -> MachineConfig:
    """The :class:`MachineConfig` a grid point runs on."""
    cache = CacheConfig(
        victim_cache_lines=_VICTIM_LINES if point.machine_variant == "victim" else 0
    )
    protocol = "msi" if point.machine_variant == "msi" else "illinois"
    return MachineConfig(
        num_cpus=num_cpus,
        cache=cache,
        bus=BusConfig(transfer_cycles=point.transfer_cycles),
        protocol=protocol,
    )


def _workload_variants() -> tuple[tuple[str, bool], ...]:
    base = tuple((name, False) for name in ALL_WORKLOAD_NAMES)
    restructured = tuple((name, True) for name in RESTRUCTURABLE_WORKLOAD_NAMES)
    return base + restructured


def verification_grid() -> tuple[GridPoint, ...]:
    """All 294 points, grouped by workload variant (trace-cache friendly)."""
    return tuple(
        GridPoint(workload, restructured, strategy, variant, cycles)
        for workload, restructured in _workload_variants()
        for strategy in GRID_STRATEGY_NAMES
        for cycles in GRID_TRANSFER_LATENCIES
        for variant in GRID_MACHINE_VARIANTS
    )


def quick_grid() -> tuple[GridPoint, ...]:
    """A 24-point CI-smoke subset covering every axis value.

    Two workloads (one restructured), four strategies spanning
    {none, shared-mode, exclusive-mode, throttled} prefetching, both
    latencies and all three machine variants appear at least once.
    """
    return tuple(
        GridPoint(workload, restructured, strategy, variant, cycles)
        for workload, restructured in (("Water", False), ("Pverify", True))
        for strategy in ("NP", "PWS", "EXCL", "ADAPT")
        for cycles, variant in (
            (4, "illinois"),
            (16, "victim"),
            (16, "msi"),
        )
    )


# --------------------------------------------------------------- execution

#: Per-process clean-trace LRU (grid points for one workload variant are
#: contiguous, so two entries cover serial runs and chunked workers).
_TRACE_CACHE: OrderedDict[tuple, MultiTrace] = OrderedDict()
_TRACE_CACHE_LIMIT = 2


def _clean_trace(
    workload: str, restructured: bool, num_cpus: int, seed: int, scale: float
) -> MultiTrace:
    key = (workload, restructured, num_cpus, seed, scale)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = generate_workload(
            workload,
            num_cpus=num_cpus,
            seed=seed,
            scale=scale,
            restructured=restructured,
        )
        _TRACE_CACHE[key] = trace
        while len(_TRACE_CACHE) > _TRACE_CACHE_LIMIT:
            _TRACE_CACHE.popitem(last=False)
    else:
        _TRACE_CACHE.move_to_end(key)
    return trace


def run_point(
    point: GridPoint, num_cpus: int, seed: int, scale: float
) -> PointOutcome:
    """Simulate one grid point with audits enabled."""
    trace = _clean_trace(point.workload, point.restructured, num_cpus, seed, scale)
    machine = machine_for(point, num_cpus)
    strategy = strategy_by_name(point.strategy)
    annotated, _report = insert_prefetches(trace, strategy, machine.cache)
    result = simulate(
        annotated,
        machine,
        strategy_name=point.strategy,
        sim_config=SimulationConfig(audit=True),
        adaptive=strategy.adaptive_config(),
    )
    assert result.audit is not None  # audit=True guarantees a report
    return PointOutcome(point=point, report=result.audit, exec_cycles=result.exec_cycles)


def _run_point_job(
    point: GridPoint, num_cpus: int, seed: int, scale: float
) -> dict[str, Any]:
    """Picklable worker wrapper returning a plain dict."""
    outcome = run_point(point, num_cpus, seed, scale)
    return {
        "point": point,
        "report": outcome.report.to_dict(),
        "exec_cycles": outcome.exec_cycles,
    }


def audit_grid(
    points: Iterable[GridPoint],
    num_cpus: int = 4,
    seed: int = 42,
    scale: float = 0.2,
    workers: int = 0,
    progress: Callable[[PointOutcome], None] | None = None,
) -> list[PointOutcome]:
    """Run audited simulations for ``points``; outcomes in point order.

    ``workers > 1`` fans the points over a process pool (results still
    come back in order); ``progress`` is called once per completed
    point.
    """
    points = list(points)
    outcomes: list[PointOutcome] = []
    if workers and workers > 1 and len(points) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(points))) as pool:
            futures = [
                pool.submit(_run_point_job, point, num_cpus, seed, scale)
                for point in points
            ]
            for future in futures:
                data = future.result()
                outcome = PointOutcome(
                    point=data["point"],
                    report=AuditReport.from_dict(data["report"]),
                    exec_cycles=data["exec_cycles"],
                )
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome)
    else:
        for point in points:
            outcome = run_point(point, num_cpus, seed, scale)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    return outcomes
