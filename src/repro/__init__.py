"""repro: a reproduction of Tullsen & Eggers, "Limitations of Cache
Prefetching on a Bus-Based Multiprocessor" (ISCA 1993).

The package provides, end to end, the paper's experimental pipeline:

1. :mod:`repro.workloads` -- executable kernels standing in for the
   paper's five traced parallel programs;
2. :mod:`repro.prefetch` -- the off-line oracle prefetch-insertion pass
   and the five strategies (NP, PREF, EXCL, LPD, PWS);
3. :mod:`repro.sim` -- the bus-based multiprocessor simulator (Illinois
   coherence, lockup-free caches, split-transaction bus);
4. :mod:`repro.metrics` / :mod:`repro.experiments` -- the paper's
   metrics and one runner per table and figure.

Quickstart::

    from repro import MachineConfig, PREF, run_strategy

    result = run_strategy("Water", PREF, MachineConfig())
    print(result.run.cpu_miss_rate, result.comparison.speedup)
"""

from repro.audit.report import AuditReport, AuditViolation
from repro.common.config import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    PrefetchConfig,
    SimulationConfig,
)
from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.metrics.compare import RunComparison, compare_runs, speedup_table
from repro.metrics.results import CpuMetrics, MissCounts, RunMetrics
from repro.prefetch.strategies import (
    ALL_STRATEGIES,
    EXCL,
    LPD,
    NP,
    PBUF,
    PREF,
    PREFETCH_STRATEGIES,
    PWS,
    PrefetchStrategy,
    strategy_by_name,
)
from repro.prefetch.insertion import insert_prefetches
from repro.prefetch.oracle import insert_perfect_prefetches
from repro.analysis import advise, profile_sharing
from repro.sim.engine import simulate
from repro.trace.stream import CpuTrace, MultiTrace
from repro.workloads.registry import (
    ALL_WORKLOAD_NAMES,
    RESTRUCTURABLE_WORKLOAD_NAMES,
    generate_workload,
    get_workload,
)
from repro.experiments.runner import ExperimentRunner, StrategyResult, run_strategy

__version__ = "1.0.0"

__all__ = [
    "ALL_STRATEGIES",
    "ALL_WORKLOAD_NAMES",
    "AuditReport",
    "AuditViolation",
    "BusConfig",
    "CacheConfig",
    "ConfigurationError",
    "CpuMetrics",
    "CpuTrace",
    "EXCL",
    "ExperimentRunner",
    "LPD",
    "MachineConfig",
    "MissCounts",
    "MultiTrace",
    "NP",
    "PBUF",
    "PREF",
    "PREFETCH_STRATEGIES",
    "PWS",
    "PrefetchConfig",
    "PrefetchStrategy",
    "RESTRUCTURABLE_WORKLOAD_NAMES",
    "ReproError",
    "RunComparison",
    "RunMetrics",
    "SimulationConfig",
    "SimulationError",
    "StrategyResult",
    "TraceError",
    "advise",
    "compare_runs",
    "generate_workload",
    "get_workload",
    "insert_perfect_prefetches",
    "insert_prefetches",
    "profile_sharing",
    "run_strategy",
    "simulate",
    "speedup_table",
    "strategy_by_name",
    "__version__",
]
