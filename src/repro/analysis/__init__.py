"""Sharing analysis and restructuring advice.

The paper's section 4.4 leans on two external capabilities: measuring
*which* data is falsely shared (Eggers & Jeremiassen's profiling) and
restructuring it (their compiler transformation).  This package
implements working equivalents over our traces:

* :mod:`repro.analysis.sharing` -- a word-granularity sharing profiler:
  who reads/writes each cache line, which lines are write-shared, and
  which exhibit *false-sharing potential* (multiple writers/readers
  with disjoint word sets in one line);
* :mod:`repro.analysis.attribution` -- attributes lines back to the
  named program arrays recorded in the trace metadata;
* :mod:`repro.analysis.advisor` -- turns the profile into concrete
  layout recommendations (pad records to line size, group per-CPU data)
  with estimated impact, i.e. a miniature Jeremiassen–Eggers advisor;
* :mod:`repro.analysis.dynamic` -- the *measured* counterpart: folds
  the per-line heat recorded by :mod:`repro.obs.lineprof` into
  per-structure summaries, cross-references the advisor's static
  verdicts, and renders the ``repro c2c`` report.

Example::

    from repro import generate_workload
    from repro.analysis import advise, render_advice

    trace = generate_workload("Pverify")
    print(render_advice(advise(trace)))
"""

from repro.analysis.sharing import BlockSharing, SharingProfile, profile_sharing
from repro.analysis.attribution import ArraySharingSummary, attribute_sharing
from repro.analysis.advisor import Recommendation, advise, render_advice
from repro.analysis.dynamic import (
    StructureHeat,
    attribute_lines,
    blamed_families,
    c2c_to_dict,
    cross_reference,
    render_c2c,
)

__all__ = [
    "ArraySharingSummary",
    "BlockSharing",
    "Recommendation",
    "SharingProfile",
    "StructureHeat",
    "advise",
    "attribute_lines",
    "attribute_sharing",
    "blamed_families",
    "c2c_to_dict",
    "cross_reference",
    "profile_sharing",
    "render_advice",
    "render_c2c",
]
