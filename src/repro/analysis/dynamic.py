"""Map measured per-line heat back to named data structures.

The static half of :mod:`repro.analysis` predicts sharing from the
trace; this module closes the loop with the *dynamic* measurements of
:class:`~repro.obs.lineprof.LineProfiler`: which structures' lines
actually missed, stalled, occupied the bus and ping-ponged on the
simulated machine, and how their prefetches fared.  The rendered
report is the moral equivalent of ``perf c2c report`` for the
simulated multiprocessor, with the advisor's static verdict
cross-referenced per structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.advisor import Recommendation
from repro.analysis.attribution import _family
from repro.metrics.charts import sparkline
from repro.metrics.formatting import format_table
from repro.obs.lineprof import EFFICACY_BUCKETS, LineProfile, LineStats

__all__ = [
    "StructureHeat",
    "attribute_lines",
    "blamed_families",
    "cross_reference",
    "render_c2c",
    "c2c_to_dict",
]


@dataclass
class StructureHeat:
    """Dynamic heat aggregated over one named data structure (family).

    Attributes:
        name: family name (per-CPU instances folded), or the
            ``<sync/other>`` fallback for lines outside every array.
        shared: declared shared in the layout metadata.
        lines: distinct cache lines with attributed activity.
        cpu_misses / invalidation_misses / false_sharing_misses /
        sync_misses: summed per-line miss counts.
        stall_cycles: summed demand stall cycles.
        bus_cycles: summed contended-bus occupancy.
        invalidations: invalidate snoops received.
        handoffs: distinct-writer ownership handoffs.
        max_chain: longest ping-pong chain over the structure's lines.
        handoff_distance_sum / handoff_gaps: inter-handoff distance
            aggregate (mean = sum / gaps).
        useful / late / squashed / wasted / harmful / throttled:
            prefetch efficacy.
        blocks: the structure's attributed block addresses (sparkline
            selection input).
        advised_action: the static advisor's verdict for this family
            (``pad`` / ``group`` / ``keep``; empty when the advisor was
            not consulted or does not know the family).
    """

    name: str
    shared: bool
    lines: int = 0
    cpu_misses: int = 0
    invalidation_misses: int = 0
    false_sharing_misses: int = 0
    sync_misses: int = 0
    stall_cycles: int = 0
    bus_cycles: int = 0
    invalidations: int = 0
    handoffs: int = 0
    max_chain: int = 0
    handoff_distance_sum: int = 0
    handoff_gaps: int = 0
    useful: int = 0
    late: int = 0
    squashed: int = 0
    wasted: int = 0
    harmful: int = 0
    throttled: int = 0
    blocks: list[int] = field(default_factory=list)
    advised_action: str = ""

    @property
    def heat(self) -> int:
        """Ranking key: stall + bus cycles attributed to the structure."""
        return self.stall_cycles + self.bus_cycles

    @property
    def mean_handoff_distance(self) -> float:
        """Mean cycles between consecutive writer handoffs."""
        return self.handoff_distance_sum / self.handoff_gaps if self.handoff_gaps else 0.0

    @property
    def prefetches(self) -> int:
        """Issued prefetches classified on the structure's lines."""
        return (
            self.useful
            + self.late
            + self.squashed
            + self.wasted
            + self.harmful
            + self.throttled
        )

    def _absorb(self, line: LineStats) -> None:
        self.lines += 1
        self.cpu_misses += line.cpu_misses
        self.invalidation_misses += line.invalidation_misses
        self.false_sharing_misses += line.false_sharing_misses
        self.sync_misses += line.sync_misses
        self.stall_cycles += line.stall_cycles
        self.bus_cycles += line.bus_cycles
        self.invalidations += line.invalidations
        self.handoffs += line.handoffs
        self.handoff_distance_sum += line.handoff_distance_sum
        self.handoff_gaps += line.handoff_gaps
        if line.max_chain > self.max_chain:
            self.max_chain = line.max_chain
        self.useful += line.useful
        self.late += line.late
        self.squashed += line.squashed
        self.wasted += line.wasted
        self.harmful += line.harmful
        self.throttled += line.throttled
        self.blocks.append(line.block)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (blocks omitted: an implementation detail)."""
        return {
            "name": self.name,
            "shared": self.shared,
            "lines": self.lines,
            "cpu_misses": self.cpu_misses,
            "invalidation_misses": self.invalidation_misses,
            "false_sharing_misses": self.false_sharing_misses,
            "sync_misses": self.sync_misses,
            "stall_cycles": self.stall_cycles,
            "bus_cycles": self.bus_cycles,
            "invalidations": self.invalidations,
            "handoffs": self.handoffs,
            "max_chain": self.max_chain,
            "mean_handoff_distance": self.mean_handoff_distance,
            "useful": self.useful,
            "late": self.late,
            "squashed": self.squashed,
            "wasted": self.wasted,
            "harmful": self.harmful,
            "throttled": self.throttled,
            "advised_action": self.advised_action,
        }


def attribute_lines(profile: LineProfile, arrays: list[dict]) -> list[StructureHeat]:
    """Fold the profile's per-line heat into per-structure summaries.

    ``arrays`` is the layout metadata (``trace.metadata["arrays"]``);
    per-CPU instances fold into families, lines outside every array
    land in ``<sync/other>``.  Sorted hottest first (stall + bus
    cycles, ties by name).
    """
    ranges: list[tuple[int, int, str, bool]] = [
        (int(a["base"]), int(a["base"]) + int(a["size"]), _family(str(a["name"])), bool(a["shared"]))
        for a in arrays
    ]
    ranges.sort()
    heats: dict[str, StructureHeat] = {}
    for _base, _end, name, shared in ranges:
        if name not in heats:
            heats[name] = StructureHeat(name=name, shared=shared)
    fallback = StructureHeat(name="<sync/other>", shared=True)

    def owner_of(block: int) -> StructureHeat:
        lo, hi = 0, len(ranges)
        while lo < hi:
            mid = (lo + hi) // 2
            if ranges[mid][0] <= block:
                lo = mid + 1
            else:
                hi = mid
        if lo:
            base, end, name, _shared = ranges[lo - 1]
            if block < end:
                return heats[name]
        return fallback

    for line in profile.lines.values():
        owner_of(line.block)._absorb(line)

    out = [h for h in heats.values() if h.lines] + ([fallback] if fallback.lines else [])
    out.sort(key=lambda h: (-h.heat, h.name))
    return out


def cross_reference(
    heats: list[StructureHeat], recommendations: list[Recommendation]
) -> list[StructureHeat]:
    """Annotate each structure with the static advisor's verdict."""
    actions = {r.array: r.action for r in recommendations}
    for heat in heats:
        heat.advised_action = actions.get(heat.name, "")
    return heats


def blamed_families(heats: list[StructureHeat], metric: str = "false_sharing_misses") -> list[str]:
    """Family names the dynamic profiler blames (``metric`` > 0), hottest
    first by that metric.  The fallback bucket is excluded: blame needs
    a name."""
    blamed = [h for h in heats if h.name != "<sync/other>" and getattr(h, metric) > 0]
    blamed.sort(key=lambda h: (-getattr(h, metric), h.name))
    return [h.name for h in blamed]


def _efficacy_cell(item: "LineStats | StructureHeat") -> str:
    if not item.prefetches:
        return "-"
    return (
        f"u{item.useful}/l{item.late}/s{item.squashed}"
        f"/w{item.wasted}/h{item.harmful}/t{item.throttled}"
    )


def render_c2c(
    profile: LineProfile,
    heats: list[StructureHeat],
    top_lines: int = 15,
    label: str = "",
) -> str:
    """The textual "c2c report": hot lines, hot structures, sparkline."""
    parts: list[str] = []
    title = "Cache-line heat report" + (f" -- {label}" if label else "")
    parts.append(title)
    parts.append(
        f"{profile.num_lines} lines touched"
        f" ({profile.block_size}-byte blocks, {profile.window_cycles}-cycle windows)"
    )

    owners: dict[int, str] = {}
    for heat in heats:
        for block in heat.blocks:
            owners[block] = heat.name
    line_rows = [
        [
            f"{line.block:#x}",
            owners.get(line.block, "?"),
            line.cpu_misses,
            line.invalidation_misses,
            line.false_sharing_misses,
            line.stall_cycles,
            line.bus_cycles,
            line.handoffs,
            line.max_chain,
            _efficacy_cell(line),
        ]
        for line in profile.hottest(top_lines)
    ]
    parts.append(
        format_table(
            ["Line", "Structure", "Miss", "Inval", "FS", "Stall", "Bus", "Hoff", "Chain", "Prefetch u/l/s/w/h/t"],
            line_rows,
            title=f"Hottest {len(line_rows)} lines (by stall + bus cycles)",
        )
    )

    struct_rows = [
        [
            h.name,
            "shared" if h.shared else "private",
            h.lines,
            h.cpu_misses,
            h.invalidation_misses,
            h.false_sharing_misses,
            h.stall_cycles,
            h.bus_cycles,
            h.handoffs,
            h.max_chain,
            f"{h.mean_handoff_distance:.0f}" if h.handoff_gaps else "-",
            _efficacy_cell(h),
            h.advised_action or "-",
        ]
        for h in heats
    ]
    parts.append(
        format_table(
            [
                "Structure",
                "Region",
                "Lines",
                "Miss",
                "Inval",
                "FS",
                "Stall",
                "Bus",
                "Hoff",
                "Chain",
                "Hoff dist",
                "Prefetch u/l/s/w/h/t",
                "Advisor",
            ],
            struct_rows,
            title="Heat by data structure (advisor verdict cross-referenced)",
        )
    )

    series = profile.inval_window_series()
    if any(series):
        parts.append(
            f"invalidations per {profile.window_cycles}-cycle window "
            f"(peak {max(series)}):\n  {sparkline(series)}"
        )
    else:
        parts.append("no invalidations observed")
    return "\n\n".join(parts) + "\n"


def c2c_to_dict(
    profile: LineProfile,
    heats: list[StructureHeat],
    label: str = "",
    top_lines: int = 50,
) -> dict[str, Any]:
    """JSON export: run context, hottest lines, structures, sparkline."""
    owners: dict[int, str] = {}
    for heat in heats:
        for block in heat.blocks:
            owners[block] = heat.name
    return {
        "label": label,
        "block_size": profile.block_size,
        "window_cycles": profile.window_cycles,
        "num_lines": profile.num_lines,
        "efficacy_totals": {b: profile.total(b) for b in EFFICACY_BUCKETS},
        "hot_lines": [
            dict(line.to_dict(), structure=owners.get(line.block, "?"))
            for line in profile.hottest(top_lines)
        ],
        "structures": [h.to_dict() for h in heats],
        "inval_window_series": profile.inval_window_series(),
        "blamed_families": blamed_families(heats),
    }
