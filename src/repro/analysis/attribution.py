"""Attribute sharing behaviour to named program data structures.

Workload traces carry their memory map (``metadata["arrays"]``, written
by the layout); combining it with a
:class:`~repro.analysis.sharing.SharingProfile` answers the question an
engineer actually asks: *which array is falsely shared?*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sharing import SharingProfile
from repro.metrics.formatting import format_table
from repro.trace.stream import MultiTrace

__all__ = ["ArraySharingSummary", "attribute_sharing", "render_attribution"]


@dataclass
class ArraySharingSummary:
    """Sharing facts aggregated over one named array.

    ``name`` may be a per-CPU instance name like ``cost_table[cpu3]``;
    :func:`attribute_sharing` folds such instances into their family
    name (``cost_table``) so reports stay readable.
    """

    name: str
    shared: bool
    bytes: int = 0
    lines: int = 0
    refs: int = 0
    writes: int = 0
    write_shared_lines: int = 0
    false_sharing_lines: int = 0
    false_sharing_refs: int = 0

    @property
    def false_sharing_line_fraction(self) -> float:
        """Fraction of the array's touched lines with FS potential."""
        return self.false_sharing_lines / self.lines if self.lines else 0.0


def _family(name: str) -> str:
    return name.split("[", 1)[0]


def attribute_sharing(trace: MultiTrace, profile: SharingProfile) -> list[ArraySharingSummary]:
    """Fold the profile's per-line facts into per-array summaries.

    Arrays are taken from ``trace.metadata["arrays"]``; lines outside
    every array (locks, barrier counters) land in a ``<sync/other>``
    bucket.  Returns summaries sorted by false-sharing refs, then refs.
    """
    arrays = trace.metadata.get("arrays") or []
    ranges: list[tuple[int, int, str, bool]] = [
        (int(a["base"]), int(a["base"]) + int(a["size"]), _family(str(a["name"])), bool(a["shared"]))
        for a in arrays
    ]
    ranges.sort()

    summaries: dict[str, ArraySharingSummary] = {}
    for base, end, name, shared in ranges:
        summary = summaries.get(name)
        if summary is None:
            summaries[name] = ArraySharingSummary(name=name, shared=shared, bytes=end - base)
        else:
            summary.bytes += end - base

    fallback = ArraySharingSummary(name="<sync/other>", shared=True)

    def owner_of(block: int) -> ArraySharingSummary:
        # Binary search over the sorted ranges.
        lo, hi = 0, len(ranges)
        while lo < hi:
            mid = (lo + hi) // 2
            if ranges[mid][0] <= block:
                lo = mid + 1
            else:
                hi = mid
        if lo:
            base, end, name, _shared = ranges[lo - 1]
            if block < end:
                return summaries[name]
        return fallback

    for block_entry in profile.blocks.values():
        summary = owner_of(block_entry.block)
        summary.lines += 1
        summary.refs += block_entry.refs
        summary.writes += block_entry.writes
        if block_entry.is_write_shared:
            summary.write_shared_lines += 1
        if block_entry.has_false_sharing_potential:
            summary.false_sharing_lines += 1
            summary.false_sharing_refs += block_entry.refs

    out = [s for s in summaries.values() if s.lines] + ([fallback] if fallback.lines else [])
    out.sort(key=lambda s: (-s.false_sharing_refs, -s.refs))
    return out


def render_attribution(summaries: list[ArraySharingSummary]) -> str:
    """Text table of the attribution report."""
    rows = [
        [
            s.name,
            "shared" if s.shared else "private",
            s.lines,
            s.refs,
            s.write_shared_lines,
            s.false_sharing_lines,
            f"{s.false_sharing_line_fraction:.0%}",
        ]
        for s in summaries
    ]
    return format_table(
        ["Array", "Region", "Lines", "Refs", "Write-shared", "FS-potential", "FS line frac"],
        rows,
        title="Sharing attribution by data structure",
    )
