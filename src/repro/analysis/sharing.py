"""Word-granularity sharing profiler over traces.

A static (machine-independent) analysis: for each cache line, which
CPUs read and wrote it, and which *words* each CPU touched.  From that
it derives the two properties that drive the paper's results:

* **write-shared** -- accessed by more than one CPU, written by at
  least one (the PWS target set);
* **false-sharing potential** -- some CPU writes words of the line that
  another accessing CPU never touches.  Every such line will generate
  false-sharing invalidation misses under a write-invalidate protocol;
  the potential count is the static analogue of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import MemRef
from repro.trace.stream import MultiTrace

__all__ = ["BlockSharing", "SharingProfile", "profile_sharing"]


@dataclass
class BlockSharing:
    """Sharing facts for one cache line.

    ``read_words``/``write_words`` map CPU id to a bitmask of the words
    that CPU read/wrote in the line.
    """

    block: int
    refs: int = 0
    writes: int = 0
    read_words: dict[int, int] = field(default_factory=dict)
    write_words: dict[int, int] = field(default_factory=dict)

    @property
    def cpus(self) -> set[int]:
        """Every CPU that touched the line."""
        return set(self.read_words) | set(self.write_words)

    @property
    def writers(self) -> set[int]:
        """CPUs that wrote the line."""
        return set(self.write_words)

    def words_of(self, cpu: int) -> int:
        """All words ``cpu`` accessed (read or write)."""
        return self.read_words.get(cpu, 0) | self.write_words.get(cpu, 0)

    @property
    def is_shared(self) -> bool:
        """Accessed by more than one CPU."""
        return len(self.cpus) > 1

    @property
    def is_write_shared(self) -> bool:
        """Shared and written: the coherence-traffic generator."""
        return self.is_shared and bool(self.writers)

    @property
    def has_false_sharing_potential(self) -> bool:
        """True if some CPU writes words another accessing CPU never uses.

        The static pre-image of a false-sharing invalidation miss: CPU w
        writing word set W invalidates CPU r's copy although r only uses
        words outside W.
        """
        if not self.is_write_shared:
            return False
        for writer, wmask in self.write_words.items():
            for other in self.cpus:
                if other == writer:
                    continue
                other_words = self.words_of(other)
                if other_words and (other_words & wmask) == 0:
                    return True
        return False

    @property
    def has_disjoint_writer_ownership(self) -> bool:
        """Multiple writers whose written word sets never overlap.

        The signature of per-CPU data interleaved into one line: each
        word has a single owner-writer.  Such lines are fixed by
        *grouping* each CPU's elements contiguously (readers may roam;
        ownership is a writer property).
        """
        if len(self.write_words) < 2:
            return False
        masks = list(self.write_words.values())
        for i, a in enumerate(masks):
            for b in masks[i + 1 :]:
                if a & b:
                    return False
        return True

    @property
    def is_purely_false_shared(self) -> bool:
        """No two CPUs ever touch a common word (pure layout accident)."""
        if not self.is_shared:
            return False
        masks = [self.words_of(cpu) for cpu in self.cpus]
        for i, a in enumerate(masks):
            for b in masks[i + 1 :]:
                if a & b:
                    return False
        return bool(self.writers)


@dataclass
class SharingProfile:
    """The profiler's output: per-line facts plus aggregates."""

    block_size: int
    blocks: dict[int, BlockSharing]
    total_refs: int

    def write_shared_blocks(self) -> list[BlockSharing]:
        """All write-shared lines."""
        return [b for b in self.blocks.values() if b.is_write_shared]

    def false_sharing_blocks(self) -> list[BlockSharing]:
        """All lines with false-sharing potential."""
        return [b for b in self.blocks.values() if b.has_false_sharing_potential]

    def hottest(self, n: int = 10, predicate=None) -> list[BlockSharing]:
        """The ``n`` most-referenced lines (optionally filtered)."""
        candidates = self.blocks.values()
        if predicate is not None:
            candidates = [b for b in candidates if predicate(b)]
        return sorted(candidates, key=lambda b: -b.refs)[:n]

    @property
    def false_sharing_ref_fraction(self) -> float:
        """Fraction of all references that hit falsely-shared lines."""
        if not self.total_refs:
            return 0.0
        fs_refs = sum(b.refs for b in self.false_sharing_blocks())
        return fs_refs / self.total_refs


def profile_sharing(trace: MultiTrace, block_size: int = 32) -> SharingProfile:
    """Profile every demand reference of ``trace`` at ``block_size``."""
    mask = block_size - 1
    words_shift = 2  # 4-byte words
    blocks: dict[int, BlockSharing] = {}
    total = 0
    for cpu_trace in trace:
        cpu = cpu_trace.cpu
        for event in cpu_trace:
            if type(event) is not MemRef:
                continue
            total += 1
            block = event.addr & ~mask
            entry = blocks.get(block)
            if entry is None:
                entry = blocks[block] = BlockSharing(block)
            entry.refs += 1
            word_bit = 1 << ((event.addr & mask) >> words_shift)
            if event.is_write:
                entry.writes += 1
                entry.write_words[cpu] = entry.write_words.get(cpu, 0) | word_bit
            else:
                entry.read_words[cpu] = entry.read_words.get(cpu, 0) | word_bit
    return SharingProfile(block_size=block_size, blocks=blocks, total_refs=total)
