"""A miniature Jeremiassen–Eggers restructuring advisor.

Given a trace, decide which data structures would benefit from the two
layout transformations the paper evaluates in section 4.4:

* **pad** -- records smaller than a cache line whose line-mates are
  written by different CPUs: padding each record to its own line
  removes the false sharing at the cost of footprint;
* **group** -- logically-shared arrays whose elements are each used by
  (predominantly) one CPU in an interleaved pattern: grouping each
  CPU's elements contiguously removes the false sharing with no
  footprint cost and usually improves locality.

The advisor reports, per recommendation, the falsely-shared lines and
the references flowing through them -- the static proxy for how many
invalidation misses the transformation removes (Table 4's effect).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.attribution import _family
from repro.analysis.sharing import SharingProfile, profile_sharing
from repro.metrics.formatting import format_table
from repro.trace.stream import MultiTrace

__all__ = ["Recommendation", "advise", "render_advice"]

#: Below this FS-line fraction an array is not worth transforming.
_MIN_FS_LINE_FRACTION = 0.05
#: Minimum references through falsely-shared lines to matter.
_MIN_FS_REFS = 32


@dataclass
class Recommendation:
    """One advised transformation.

    Attributes:
        array: the data structure (family name).
        action: ``"pad"``, ``"group"``, or ``"keep"``.
        reason: one-sentence justification.
        fs_lines: falsely-shared lines the action addresses.
        fs_refs: references flowing through those lines.
        footprint_cost_bytes: extra memory padding would consume
            (zero for grouping).
    """

    array: str
    action: str
    reason: str
    fs_lines: int
    fs_refs: int
    footprint_cost_bytes: int = 0


def advise(trace: MultiTrace, block_size: int = 32) -> list[Recommendation]:
    """Analyse ``trace`` and recommend layout transformations.

    Only arrays named in the trace metadata are considered (sync lines
    are the lock implementation's business).  Returns recommendations
    sorted by addressed references, most impactful first.
    """
    profile = profile_sharing(trace, block_size)
    arrays = trace.metadata.get("arrays") or []

    # Group per-CPU instances into families, merging ranges.
    families: dict[str, dict] = {}
    for a in arrays:
        fam = families.setdefault(
            _family(str(a["name"])),
            {"ranges": [], "stride": int(a["stride"]), "shared": bool(a["shared"])},
        )
        fam["ranges"].append((int(a["base"]), int(a["base"]) + int(a["size"])))

    recommendations: list[Recommendation] = []
    for name, fam in families.items():
        if not fam["shared"]:
            continue
        fs_lines = 0
        fs_refs = 0
        lines = 0
        # Writer-ownership evidence: lines whose written words split
        # cleanly between single-writer word sets favour grouping
        # (readers may roam; ownership is a writer property).
        interleaved_owner_lines = 0
        for entry in profile.blocks.values():
            if not any(lo <= entry.block < hi for lo, hi in fam["ranges"]):
                continue
            lines += 1
            if entry.has_false_sharing_potential:
                fs_lines += 1
                fs_refs += entry.refs
                if entry.has_disjoint_writer_ownership:
                    interleaved_owner_lines += 1
        if not lines:
            continue
        if fs_lines / lines < _MIN_FS_LINE_FRACTION or fs_refs < _MIN_FS_REFS:
            recommendations.append(
                Recommendation(
                    array=name,
                    action="keep",
                    reason="no significant false sharing detected",
                    fs_lines=fs_lines,
                    fs_refs=fs_refs,
                )
            )
            continue

        stride = fam["stride"]
        if interleaved_owner_lines >= 0.5 * fs_lines:
            # Disjoint per-CPU word ownership inside lines: the elements
            # belong to distinct CPUs, so grouping by owner fixes the
            # layout for free.
            recommendations.append(
                Recommendation(
                    array=name,
                    action="group",
                    reason=(
                        "line-mates are owned by different CPUs with disjoint "
                        "words; group each CPU's elements contiguously "
                        "(per_cpu_shared_array)"
                    ),
                    fs_lines=fs_lines,
                    fs_refs=fs_refs,
                )
            )
        else:
            elements = sum(hi - lo for lo, hi in fam["ranges"]) // max(1, stride)
            pad_cost = max(0, (block_size - stride % block_size) % block_size) * elements
            recommendations.append(
                Recommendation(
                    array=name,
                    action="pad",
                    reason=(
                        f"records of {stride} bytes share lines with other "
                        "CPUs' data; pad each to a full line (pad_to_line)"
                    ),
                    fs_lines=fs_lines,
                    fs_refs=fs_refs,
                    footprint_cost_bytes=pad_cost,
                )
            )

    recommendations.sort(key=lambda r: (r.action == "keep", -r.fs_refs))
    return recommendations


def render_advice(recommendations: list[Recommendation]) -> str:
    """Text table of the advisor's output."""
    rows = [
        [
            r.array,
            r.action,
            r.fs_lines,
            r.fs_refs,
            r.footprint_cost_bytes,
            r.reason,
        ]
        for r in recommendations
    ]
    return format_table(
        ["Array", "Action", "FS lines", "FS refs", "Pad cost (B)", "Why"],
        rows,
        title="Restructuring advice (Jeremiassen-Eggers style)",
    )
