"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied.

    Raised eagerly at construction time (e.g. a cache size that is not a
    power-of-two multiple of the block size) so that misconfiguration is
    caught before a long simulation starts.
    """


class TraceError(ReproError):
    """A trace stream is malformed or violates an invariant.

    Examples: a barrier event whose participant count does not match the
    machine, a lock release without a matching acquire, or a negative
    instruction gap.
    """


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state.

    This always indicates a bug in the simulator (or a trace that passed
    validation but is semantically impossible), never a user error.
    """
