"""Deterministic random-number discipline for workload generation.

Every stochastic decision in the workload kernels draws from a
:class:`random.Random` instance seeded through :func:`derive_rng`, so a
(workload, seed, cpu, purpose) tuple always produces the same stream.
Determinism matters twice over here: the prefetch-insertion pass and the
multiprocessor simulation must see *the same* trace, and experiments must
be reproducible run to run.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_rng", "derive_seed"]


def derive_seed(*components: object) -> int:
    """A stable 64-bit seed derived from arbitrary hashable components.

    Uses SHA-256 over the repr of the components rather than ``hash()``
    so the value is stable across interpreter runs (Python salts string
    hashes per process).
    """
    text = "\x1f".join(repr(c) for c in components)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(*components: object) -> random.Random:
    """A ``random.Random`` seeded deterministically from the components."""
    return random.Random(derive_seed(*components))
