"""Configuration dataclasses for the machine, caches, bus and prefetcher.

Defaults reproduce the machine of Tullsen & Eggers section 3.3:

* one direct-mapped, copy-back, 32 KB data cache with 32-byte blocks per
  processor;
* Illinois coherence protocol (private-clean state enables exclusive
  prefetching without a bus upgrade);
* 100-cycle memory latency, split into an uncontended portion and a
  contended data-bus transfer of 4 to 32 cycles;
* a 16-deep prefetch instruction buffer;
* round-robin bus arbitration favouring blocking (demand) loads over
  prefetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.errors import ConfigurationError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one per-processor data cache.

    Attributes:
        size_bytes: total capacity in bytes (default 32 KB).
        block_size: cache-line size in bytes (default 32).
        associativity: ways per set; 1 = direct mapped (the paper default).
        victim_cache_lines: entries in an optional fully-associative victim
            cache (0 disables it).  Section 4.3 hypothesises that a victim
            cache would absorb the conflict misses prefetching introduces;
            the ablation benches exercise this.
    """

    size_bytes: int = 32 * 1024
    block_size: int = 32
    associativity: int = 1
    victim_cache_lines: int = 0

    def __post_init__(self) -> None:
        _require(_is_power_of_two(self.block_size), f"block_size must be a power of two, got {self.block_size}")
        _require(self.block_size >= 4, f"block_size must be at least one word (4 bytes), got {self.block_size}")
        _require(self.size_bytes > 0, "size_bytes must be positive")
        _require(self.associativity >= 1, "associativity must be >= 1")
        _require(
            self.size_bytes % (self.block_size * self.associativity) == 0,
            "size_bytes must be a multiple of block_size * associativity",
        )
        _require(_is_power_of_two(self.num_sets), f"number of sets must be a power of two, got {self.num_sets}")
        _require(self.victim_cache_lines >= 0, "victim_cache_lines must be >= 0")

    @property
    def num_blocks(self) -> int:
        """Total number of block frames in the cache."""
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        """Number of sets (frames / associativity)."""
        return self.num_blocks // self.associativity

    @property
    def words_per_block(self) -> int:
        """Number of 4-byte words per block (false-sharing granularity)."""
        return self.block_size // 4

    def set_index(self, block_addr: int) -> int:
        """Set index for a block address."""
        return (block_addr // self.block_size) & (self.num_sets - 1)


@dataclass(frozen=True)
class BusConfig:
    """Timing model of the memory subsystem (section 3.3 of the paper).

    The total unloaded memory latency (``memory_latency``) is divided into
    an uncontended portion (address transmission plus memory lookup in the
    split-transaction reading of the model) and a contended data-transfer
    portion of ``transfer_cycles`` during which the single shared resource
    -- the data bus -- is occupied.  Varying ``transfer_cycles`` from 4 to
    32 sweeps the machine from a high-throughput (1.6 GB/s at 200 MHz) to a
    low-throughput (200 MB/s) memory system.

    Attributes:
        memory_latency: total unloaded miss latency in CPU cycles.
        transfer_cycles: contended data-bus occupancy per block transfer.
        upgrade_latency: unloaded latency of an invalidating (upgrade) bus
            operation, which uses the address bus only.
        upgrade_occupancy: cycles of contended-resource occupancy charged
            per upgrade operation.
        writeback_occupancy: data-bus occupancy of a copy-back of a dirty
            victim (a full block transfer).  ``None`` means "same as
            transfer_cycles".
        demand_priority: if True (the paper's machine), arbitration always
            grants eligible demand operations before eligible prefetches.
        contention_free: model an uncontended memory system (unlimited
            transfer bandwidth): every transaction is served the moment
            it is eligible, never queuing behind another.  This is the
            machine Mowry & Gupta evaluated (one processor per DASH
            cluster -- section 4.2 credits their much larger speedups to
            exactly this difference); the contention-free extension
            bench reproduces the comparison.
    """

    memory_latency: int = 100
    transfer_cycles: int = 8
    upgrade_latency: int = 12
    upgrade_occupancy: int = 1
    writeback_occupancy: int | None = None
    demand_priority: bool = True
    contention_free: bool = False

    def __post_init__(self) -> None:
        _require(self.memory_latency > 0, "memory_latency must be positive")
        _require(
            0 < self.transfer_cycles <= self.memory_latency,
            "transfer_cycles must be in (0, memory_latency]",
        )
        _require(self.upgrade_latency >= 1, "upgrade_latency must be >= 1")
        _require(self.upgrade_occupancy >= 1, "upgrade_occupancy must be >= 1")
        if self.writeback_occupancy is not None:
            _require(self.writeback_occupancy >= 1, "writeback_occupancy must be >= 1")

    @property
    def uncontended_cycles(self) -> int:
        """Cycles of a miss spent off the contended resource."""
        return self.memory_latency - self.transfer_cycles

    @property
    def effective_writeback_occupancy(self) -> int:
        """Data-bus occupancy actually charged per writeback."""
        if self.writeback_occupancy is None:
            return self.transfer_cycles
        return self.writeback_occupancy


@dataclass(frozen=True)
class PrefetchConfig:
    """Parameters of the lockup-free prefetch machinery in the cache.

    Attributes:
        buffer_depth: entries in the prefetch instruction buffer; the CPU
            stalls when issuing a prefetch while the buffer is full.  The
            paper uses 16, "sufficiently large to almost always prevent the
            processor from stalling".
        issue_cost: CPU cycles charged per executed prefetch instruction
            (the paper assumes a single instruction of overhead).
    """

    buffer_depth: int = 16
    issue_cost: int = 1

    def __post_init__(self) -> None:
        _require(self.buffer_depth >= 1, "buffer_depth must be >= 1")
        _require(self.issue_cost >= 0, "issue_cost must be >= 0")


@dataclass(frozen=True)
class MachineConfig:
    """A complete bus-based multiprocessor configuration.

    Attributes:
        num_cpus: number of processors (each with a private data cache).
        cache: per-processor cache geometry.
        bus: memory-subsystem timing.
        prefetch: lockup-free prefetch machinery.
        protocol: coherence protocol name: ``"illinois"`` (the paper's
            machine, with the private-clean state) or ``"msi"`` (the
            protocol-ablation variant without it).
    """

    num_cpus: int = 12
    cache: CacheConfig = field(default_factory=CacheConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    protocol: str = "illinois"

    def __post_init__(self) -> None:
        _require(self.num_cpus >= 1, "num_cpus must be >= 1")
        _require(self.protocol in ("illinois", "msi"), f"unknown protocol {self.protocol!r}")

    def with_transfer_cycles(self, transfer_cycles: int) -> "MachineConfig":
        """A copy of this machine with a different data-bus transfer latency.

        This is the knob swept in Figure 2 and Table 2 of the paper.
        """
        return replace(self, bus=replace(self.bus, transfer_cycles=transfer_cycles))

    def describe(self) -> dict[str, Any]:
        """A flat, JSON-friendly description (used for result-cache keys)."""
        return {
            "num_cpus": self.num_cpus,
            "cache_size": self.cache.size_bytes,
            "block_size": self.cache.block_size,
            "associativity": self.cache.associativity,
            "victim_cache_lines": self.cache.victim_cache_lines,
            "memory_latency": self.bus.memory_latency,
            "transfer_cycles": self.bus.transfer_cycles,
            "upgrade_latency": self.bus.upgrade_latency,
            "upgrade_occupancy": self.bus.upgrade_occupancy,
            "writeback_occupancy": self.bus.effective_writeback_occupancy,
            "demand_priority": self.bus.demand_priority,
            "contention_free": self.bus.contention_free,
            "prefetch_buffer_depth": self.prefetch.buffer_depth,
            "prefetch_issue_cost": self.prefetch.issue_cost,
            "protocol": self.protocol,
        }


@dataclass(frozen=True)
class SimulationConfig:
    """Engine-level options independent of the modelled machine.

    Attributes:
        max_cycles: safety bound; the engine raises ``SimulationError``
            if the simulated clock exceeds it (guards against deadlock
            bugs rather than modelling anything physical).
        collect_per_cpu: keep per-CPU metric breakdowns (slightly more
            memory; required by the processor-utilization experiment).
        record_miss_indices: record the (cpu, event-index) of every
            demand miss.  Used by the perfect-knowledge prefetcher
            (:mod:`repro.prefetch.oracle`) to target exactly the
            references that missed in a prior run.
        audit: run the coherence/structural/conservation sanitizer
            (:mod:`repro.audit`) alongside the simulation and attach an
            :class:`~repro.audit.report.AuditReport` to the result.
            Audits are read-only: simulated metrics are bit-identical
            with the flag on or off.
        observe: run the observability taps (:mod:`repro.obs`)
            alongside the simulation and attach an
            :class:`~repro.obs.sampler.ObsReport` (windowed telemetry
            plus a ring-buffered event timeline) to the result.  Taps
            are read-only: simulated metrics are bit-identical with the
            flag on or off.
        observe_window: telemetry window width in simulated cycles.
        observe_trace_capacity: timeline ring-buffer size in events
            (oldest evicted first; 0 keeps telemetry but no timeline).
        observe_lines: additionally run the per-cache-line heat
            profiler (:mod:`repro.obs.lineprof`) and attach a
            :class:`~repro.obs.lineprof.LineProfile` to the report's
            ``lines`` field.  Requires ``observe``; like all taps it is
            read-only, so results stay bit-identical.
    """

    max_cycles: int = 5_000_000_000
    collect_per_cpu: bool = True
    record_miss_indices: bool = False
    audit: bool = False
    observe: bool = False
    observe_window: int = 8192
    observe_trace_capacity: int = 65536
    observe_lines: bool = False

    def __post_init__(self) -> None:
        _require(self.max_cycles > 0, "max_cycles must be positive")
        _require(self.observe_window >= 1, "observe_window must be >= 1")
        _require(
            self.observe_trace_capacity >= 0, "observe_trace_capacity must be >= 0"
        )
        _require(
            self.observe or not self.observe_lines,
            "observe_lines requires observe",
        )
