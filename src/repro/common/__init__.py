"""Shared low-level utilities: addressing, configuration, errors, RNG.

Everything in this package is dependency-free (standard library + dataclasses
only) so that every other subpackage can import it without cycles.
"""

from repro.common.addressing import (
    AddressSpace,
    block_address,
    block_offset_bits,
    word_index,
    word_mask_for,
)
from repro.common.config import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    PrefetchConfig,
    SimulationConfig,
)
from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
)

__all__ = [
    "AddressSpace",
    "BusConfig",
    "CacheConfig",
    "ConfigurationError",
    "MachineConfig",
    "PrefetchConfig",
    "ReproError",
    "SimulationConfig",
    "SimulationError",
    "TraceError",
    "block_address",
    "block_offset_bits",
    "word_index",
    "word_mask_for",
]
