"""Address arithmetic helpers.

Addresses throughout the library are plain integers (byte addresses).
Cache block (line) addresses are byte addresses with the offset bits
cleared; word indices identify the 4-byte word within a block, which is
the granularity at which the false-sharing classifier tracks accesses
(following the paper's definition in section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

#: Size in bytes of the word granularity used for false-sharing detection.
WORD_SIZE = 4


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def block_offset_bits(block_size: int) -> int:
    """Number of low-order address bits covered by one cache block."""
    if not _is_power_of_two(block_size):
        raise ConfigurationError(f"block size must be a power of two, got {block_size}")
    return block_size.bit_length() - 1


def block_address(addr: int, block_size: int) -> int:
    """Byte address of the cache block containing ``addr``."""
    return addr & ~(block_size - 1)


def word_index(addr: int, block_size: int) -> int:
    """Index of the 4-byte word within its block (0 .. block_size/4 - 1)."""
    return (addr & (block_size - 1)) // WORD_SIZE


def word_mask_for(addr: int, nbytes: int, block_size: int) -> int:
    """Bitmask of word indices touched by an access of ``nbytes`` at ``addr``.

    Accesses in the workload kernels are at most one word wide in practice,
    but the helper handles multi-word accesses (e.g. a double) for
    completeness.  The access must not straddle a block boundary; kernels
    align their layouts to guarantee this.
    """
    first = word_index(addr, block_size)
    last = word_index(addr + max(nbytes, 1) - 1, block_size)
    mask = 0
    for w in range(first, last + 1):
        mask |= 1 << w
    return mask


@dataclass(frozen=True)
class AddressSpace:
    """A carve-up of the flat byte address space into named regions.

    The workload layout models allocate data structures out of an
    :class:`AddressSpace` so that private data, shared data and
    synchronization variables land in disjoint, recognisable ranges.
    This mirrors how MPTrace traces distinguish shared from private
    references and lets the analysis tools attribute traffic by region.

    Attributes:
        private_base: start of the per-CPU private region.
        private_stride: bytes of private space reserved per CPU.
        shared_base: start of the shared-data region.
        sync_base: start of the region holding locks and barrier counters.
    """

    private_base: int = 0x0100_0000
    private_stride: int = 0x0040_0000
    shared_base: int = 0x1000_0000
    sync_base: int = 0x2000_0000

    def private_region(self, cpu: int) -> int:
        """Base address of CPU ``cpu``'s private region."""
        return self.private_base + cpu * self.private_stride

    def is_shared(self, addr: int) -> bool:
        """True if ``addr`` falls in the shared-data or sync region."""
        return addr >= self.shared_base

    def is_sync(self, addr: int) -> bool:
        """True if ``addr`` falls in the synchronization region."""
        return addr >= self.sync_base
