"""Result containers produced by one simulation run."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.audit.report import AuditReport
from repro.bus.bus import BusStats
from repro.obs.sampler import ObsReport

__all__ = ["CpuMetrics", "MissCounts", "RunMetrics"]


@dataclass
class MissCounts:
    """CPU (demand) miss counts broken down as in Figure 3 of the paper.

    The two classification axes are *cause* (non-sharing vs. invalidation,
    the latter split into true and false sharing) and *coverage* (was the
    access covered by an inserted prefetch), plus the fifth category of
    accesses that found their prefetch still in progress.
    """

    nonsharing_unprefetched: int = 0
    nonsharing_prefetched: int = 0
    inval_true_unprefetched: int = 0
    inval_true_prefetched: int = 0
    inval_false_unprefetched: int = 0
    inval_false_prefetched: int = 0
    prefetch_in_progress: int = 0

    @property
    def nonsharing(self) -> int:
        """All non-sharing CPU misses (cold + capacity + conflict)."""
        return self.nonsharing_unprefetched + self.nonsharing_prefetched

    @property
    def invalidation(self) -> int:
        """All invalidation CPU misses (true + false sharing)."""
        return (
            self.inval_true_unprefetched
            + self.inval_true_prefetched
            + self.inval_false_unprefetched
            + self.inval_false_prefetched
        )

    @property
    def false_sharing(self) -> int:
        """Invalidation misses caused by false sharing."""
        return self.inval_false_unprefetched + self.inval_false_prefetched

    @property
    def true_sharing(self) -> int:
        """Invalidation misses caused by true sharing."""
        return self.inval_true_unprefetched + self.inval_true_prefetched

    @property
    def prefetched(self) -> int:
        """CPU misses on accesses that *were* covered by a prefetch
        (the prefetched data disappeared or never made it in time)."""
        return (
            self.nonsharing_prefetched
            + self.inval_true_prefetched
            + self.inval_false_prefetched
            + self.prefetch_in_progress
        )

    @property
    def cpu_misses(self) -> int:
        """All CPU misses, including prefetch-in-progress."""
        return self.nonsharing + self.invalidation + self.prefetch_in_progress

    @property
    def adjusted_cpu_misses(self) -> int:
        """CPU misses excluding prefetch-in-progress."""
        return self.nonsharing + self.invalidation

    def add(self, other: "MissCounts") -> None:
        """Accumulate ``other`` into this instance."""
        self.nonsharing_unprefetched += other.nonsharing_unprefetched
        self.nonsharing_prefetched += other.nonsharing_prefetched
        self.inval_true_unprefetched += other.inval_true_unprefetched
        self.inval_true_prefetched += other.inval_true_prefetched
        self.inval_false_unprefetched += other.inval_false_unprefetched
        self.inval_false_prefetched += other.inval_false_prefetched
        self.prefetch_in_progress += other.prefetch_in_progress

    def to_dict(self) -> dict[str, int]:
        """JSON-safe dict of the raw counters (properties are derived)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "MissCounts":
        """Exact inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass
class CpuMetrics:
    """Per-processor counters for one run.

    Attributes:
        cpu: processor id.
        demand_refs: demand data references executed (sync excluded).
        sync_refs: lock/barrier read-modify-write accesses.
        misses: demand-miss breakdown.
        sync_misses: misses on sync accesses (bus traffic, not in rates).
        prefetches_issued: prefetch instructions executed.
        prefetch_hits: prefetches that hit in cache (no bus operation).
        prefetch_fills: prefetches that went to the bus (prefetch misses).
        prefetch_squashed: prefetches dropped because a fill for the same
            block was already in flight.
        prefetch_dropped: prefetches shed by the ADAPT bandwidth
            throttle before probing the cache (always 0 for open-loop
            strategies).
        upgrades: UPGRADE bus operations initiated (write hits on SHARED).
        writebacks: dirty-victim copy-backs initiated.
        victim_hits: demand accesses recovered from the victim cache.
        miss_wait_cycles: cycles demand accesses spent stalled on misses
            (fills, upgrades and prefetch-in-progress waits); divided by
            the miss count this is the paper's "access time for CPU
            misses", which contention inflates.
        busy_cycles: cycles doing useful work (instruction gaps + 1-cycle
            cache-hit accesses + prefetch issue overhead).
        stall_cycles: cycles stalled on misses/upgrades/prefetch-buffer.
        sync_wait_cycles: cycles blocked on locks/barriers.
        prefetch_buffer_stalls: times the CPU stalled issuing a prefetch
            because the 16-deep buffer was full.
        finish_time: cycle at which this CPU retired its last event.
    """

    cpu: int
    demand_refs: int = 0
    sync_refs: int = 0
    misses: MissCounts = field(default_factory=MissCounts)
    sync_misses: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    prefetch_fills: int = 0
    prefetch_squashed: int = 0
    prefetch_dropped: int = 0
    upgrades: int = 0
    writebacks: int = 0
    victim_hits: int = 0
    miss_wait_cycles: int = 0
    busy_cycles: int = 0
    stall_cycles: int = 0
    sync_wait_cycles: int = 0
    prefetch_buffer_stalls: int = 0
    finish_time: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of this CPU's lifetime spent doing useful work."""
        return self.busy_cycles / self.finish_time if self.finish_time else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict; ``misses`` nested via :meth:`MissCounts.to_dict`."""
        data = dataclasses.asdict(self)
        data["misses"] = self.misses.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CpuMetrics":
        """Exact inverse of :meth:`to_dict`."""
        data = dict(data)
        data["misses"] = MissCounts.from_dict(data["misses"])
        return cls(**data)


@dataclass
class RunMetrics:
    """Complete results of one (workload, strategy, machine) simulation.

    The rate properties implement the paper's metrics; raw counters stay
    available for deeper analysis and the test suite's invariants.
    """

    workload: str
    strategy: str
    machine: dict[str, Any]
    exec_cycles: int
    per_cpu: list[CpuMetrics]
    bus: BusStats
    #: Sanitizer outcome when the run executed with audits enabled
    #: (:mod:`repro.audit`); None otherwise.  Excluded from equality so
    #: audited and unaudited runs of the same configuration compare
    #: equal -- the audit contract is that hooks never change results.
    audit: AuditReport | None = field(default=None, compare=False)
    #: Observability payload when the run executed with
    #: ``SimulationConfig.observe`` on (:mod:`repro.obs`); None
    #: otherwise.  Excluded from equality for the same reason: taps
    #: never change simulated results.
    obs: ObsReport | None = field(default=None, compare=False)

    # ------------------------------------------------------------ aggregates

    @property
    def num_cpus(self) -> int:
        """Processor count."""
        return len(self.per_cpu)

    @property
    def demand_refs(self) -> int:
        """Total demand references across CPUs (rate denominator)."""
        return sum(c.demand_refs for c in self.per_cpu)

    @property
    def events_retired(self) -> int:
        """Total trace events executed: demand + sync + prefetch.

        The fleet-telemetry throughput unit (ledger ``events`` and
        events/sec), counting everything the engine retired rather than
        only rate-denominator references.
        """
        return sum(
            c.demand_refs + c.sync_refs + c.prefetches_issued for c in self.per_cpu
        )

    @property
    def miss_counts(self) -> MissCounts:
        """Summed demand-miss breakdown."""
        total = MissCounts()
        for cpu in self.per_cpu:
            total.add(cpu.misses)
        return total

    @property
    def prefetches_issued(self) -> int:
        """Prefetch instructions executed across CPUs."""
        return sum(c.prefetches_issued for c in self.per_cpu)

    @property
    def prefetch_fills(self) -> int:
        """Prefetch accesses that missed and used the bus."""
        return sum(c.prefetch_fills for c in self.per_cpu)

    @property
    def prefetch_drops(self) -> int:
        """Prefetches shed by the ADAPT throttle across CPUs."""
        return sum(c.prefetch_dropped for c in self.per_cpu)

    @property
    def upgrades(self) -> int:
        """Invalidating (upgrade) bus operations."""
        return sum(c.upgrades for c in self.per_cpu)

    # ----------------------------------------------------------------- rates

    @property
    def cpu_miss_rate(self) -> float:
        """CPU misses (incl. prefetch-in-progress) per demand reference."""
        refs = self.demand_refs
        return self.miss_counts.cpu_misses / refs if refs else 0.0

    @property
    def adjusted_cpu_miss_rate(self) -> float:
        """CPU miss rate excluding prefetch-in-progress misses."""
        refs = self.demand_refs
        return self.miss_counts.adjusted_cpu_misses / refs if refs else 0.0

    @property
    def total_miss_rate(self) -> float:
        """All fill-generating misses (demand + prefetch) per reference.

        Prefetch-in-progress misses do not generate a second fill, so the
        numerator is adjusted CPU misses plus prefetch fills.
        """
        refs = self.demand_refs
        if not refs:
            return 0.0
        return (self.miss_counts.adjusted_cpu_misses + self.prefetch_fills) / refs

    @property
    def invalidation_miss_rate(self) -> float:
        """Invalidation misses per demand reference (Table 3, column 1)."""
        refs = self.demand_refs
        return self.miss_counts.invalidation / refs if refs else 0.0

    @property
    def false_sharing_miss_rate(self) -> float:
        """False-sharing misses per demand reference (Table 3, column 2)."""
        refs = self.demand_refs
        return self.miss_counts.false_sharing / refs if refs else 0.0

    @property
    def avg_miss_latency(self) -> float:
        """Mean cycles a demand CPU miss stalled the processor.

        The unloaded machine floor is ``memory_latency``; anything above
        it is queuing for the contended bus -- the quantity the paper
        says grows with prefetching ("an increase in the access time for
        CPU misses, due to high memory subsystem contention").
        """
        misses = self.miss_counts.cpu_misses
        if not misses:
            return 0.0
        return sum(c.miss_wait_cycles for c in self.per_cpu) / misses

    @property
    def bus_utilization(self) -> float:
        """Fraction of execution time the contended resource was busy."""
        return self.bus.utilization(self.exec_cycles)

    @property
    def processor_utilization(self) -> float:
        """Mean fraction of time CPUs spent doing useful work.

        Computed against the run's execution time, so CPUs idling after
        finishing early count as idle (matches the intuition behind the
        paper's "best any latency-hiding technique can do is bring
        processor utilization to 1").
        """
        if not self.exec_cycles or not self.per_cpu:
            return 0.0
        return sum(c.busy_cycles for c in self.per_cpu) / (
            self.exec_cycles * len(self.per_cpu)
        )

    def to_dict(self) -> dict[str, Any]:
        """Lossless JSON-safe rendering of the full result.

        Unlike :meth:`describe` (a flat summary of derived rates), this
        keeps every raw counter so :meth:`from_dict` reconstructs an
        *equal* object -- the contract the disk cache and the
        process-parallel runner rely on to make cached/parallel runs
        indistinguishable from in-process ones.
        """
        data = {
            "workload": self.workload,
            "strategy": self.strategy,
            "machine": self.machine,
            "exec_cycles": self.exec_cycles,
            "per_cpu": [c.to_dict() for c in self.per_cpu],
            "bus": self.bus.to_dict(),
        }
        if self.audit is not None:
            data["audit"] = self.audit.to_dict()
        if self.obs is not None:
            data["obs"] = self.obs.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunMetrics":
        """Exact inverse of :meth:`to_dict`."""
        audit = data.get("audit")
        obs = data.get("obs")
        return cls(
            workload=data["workload"],
            strategy=data["strategy"],
            machine=data["machine"],
            exec_cycles=data["exec_cycles"],
            per_cpu=[CpuMetrics.from_dict(c) for c in data["per_cpu"]],
            bus=BusStats.from_dict(data["bus"]),
            audit=AuditReport.from_dict(audit) if audit is not None else None,
            obs=ObsReport.from_dict(obs) if obs is not None else None,
        )

    def describe(self) -> dict[str, Any]:
        """Flat summary dict (JSON-friendly; used by reports and caching)."""
        mc = self.miss_counts
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "exec_cycles": self.exec_cycles,
            "demand_refs": self.demand_refs,
            "cpu_miss_rate": self.cpu_miss_rate,
            "adjusted_cpu_miss_rate": self.adjusted_cpu_miss_rate,
            "total_miss_rate": self.total_miss_rate,
            "invalidation_miss_rate": self.invalidation_miss_rate,
            "false_sharing_miss_rate": self.false_sharing_miss_rate,
            "bus_utilization": self.bus_utilization,
            "avg_miss_latency": self.avg_miss_latency,
            "processor_utilization": self.processor_utilization,
            "prefetches_issued": self.prefetches_issued,
            "prefetch_fills": self.prefetch_fills,
            "prefetch_dropped": self.prefetch_drops,
            "upgrades": self.upgrades,
            "miss_components": {
                "nonsharing_unprefetched": mc.nonsharing_unprefetched,
                "nonsharing_prefetched": mc.nonsharing_prefetched,
                "inval_true_unprefetched": mc.inval_true_unprefetched,
                "inval_true_prefetched": mc.inval_true_prefetched,
                "inval_false_unprefetched": mc.inval_false_unprefetched,
                "inval_false_prefetched": mc.inval_false_prefetched,
                "prefetch_in_progress": mc.prefetch_in_progress,
            },
        }
