"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent (fixed-width, aligned,
pipe-separated) without pulling in any dependency.
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.results import RunMetrics

__all__ = ["format_run_summary", "format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table.

    Floats are shown with three decimals; everything else via ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, text in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(text))
            else:
                widths.append(len(text))

    def line(cells: Sequence[str]) -> str:
        padded = [c.ljust(widths[i]) for i, c in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(rule)
    out.append(line(list(headers)))
    out.append(rule)
    for row in str_rows:
        out.append(line(row))
    out.append(rule)
    return "\n".join(out)


def format_run_summary(run: RunMetrics) -> str:
    """A one-run human-readable summary block."""
    mc = run.miss_counts
    lines = [
        f"{run.workload} / {run.strategy}",
        f"  execution time      : {run.exec_cycles:,} cycles",
        f"  demand references   : {run.demand_refs:,}",
        f"  CPU miss rate       : {run.cpu_miss_rate:.4f}"
        f" (adjusted {run.adjusted_cpu_miss_rate:.4f})",
        f"  total miss rate     : {run.total_miss_rate:.4f}",
        f"  invalidation misses : {mc.invalidation:,}"
        f" ({mc.false_sharing:,} false sharing)",
        f"  prefetches issued   : {run.prefetches_issued:,}"
        f" ({run.prefetch_fills:,} used the bus)",
        f"  bus utilization     : {run.bus_utilization:.3f}",
        f"  processor utilization: {run.processor_utilization:.3f}",
    ]
    return "\n".join(lines)
