"""Run metrics: miss components, rates, utilizations, and comparisons.

Terminology follows the paper's footnote 1 exactly:

* **misses / total miss rate** -- prefetch and non-prefetch accesses that
  do not hit in the cache (i.e. everything that generates a fill, the
  demand seen by the bottleneck resource);
* **CPU misses / CPU miss rate** -- misses on non-prefetch accesses,
  observed by the CPU (includes accesses that find their prefetch still
  in progress);
* **adjusted CPU miss rate** -- CPU misses excluding prefetch-in-progress
  misses;
* **non-sharing misses** -- CPU misses excluding invalidation misses;
* **prefetch misses** -- misses on prefetch accesses only.

Rates are normalised by demand data references (synchronization
accesses -- lock and barrier read-modify-writes -- contribute bus
traffic and execution time but are excluded from miss-rate numerators
and denominators; see DESIGN.md).
"""

from repro.metrics.results import CpuMetrics, MissCounts, RunMetrics
from repro.metrics.compare import RunComparison, compare_runs, speedup_table
from repro.metrics.formatting import format_table, format_run_summary

__all__ = [
    "CpuMetrics",
    "MissCounts",
    "RunComparison",
    "RunMetrics",
    "compare_runs",
    "format_run_summary",
    "format_table",
    "speedup_table",
]
