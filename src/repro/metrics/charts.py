"""Terminal chart rendering for the paper's figures.

The original figures are bar charts (Figures 1 and 3) and line plots
(Figure 2).  These helpers render the same shapes as Unicode/ASCII
charts so a terminal-only reproduction still *looks* like the paper:

* :func:`bar_chart` -- grouped horizontal bars (Figure 1 style);
* :func:`stacked_bar_chart` -- stacked horizontal bars (Figure 3 style);
* :func:`line_chart` -- multi-series plot on a character grid
  (Figure 2 style);
* :func:`sparkline` -- a one-line time series (the observability
  subsystem's bus-utilization-over-time view).

No dependencies; everything returns a plain string.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "line_chart", "progress_bar", "sparkline", "stacked_bar_chart"]

_FULL = "█"
_STACK_GLYPHS = "█▓▒░▚▞▘"
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _fmt(value: float) -> str:
    return f"{value:.3f}" if value < 10 else f"{value:.1f}"


def progress_bar(completed: float, total: float, width: int = 24) -> str:
    """A fixed-width completion bar: ``[████████▏·············]``.

    ``completed``/``total`` are clamped to [0, 1]; a zero or negative
    ``total`` renders an empty bar.  Partial cells use eighth-block
    glyphs so progress moves visibly even on long batches.
    """
    fraction = 0.0 if total <= 0 else min(1.0, max(0.0, completed / total))
    eighths = round(fraction * width * 8)
    full, rem = divmod(eighths, 8)
    cells = _FULL * full
    if rem and full < width:
        cells += "▏▎▍▌▋▊▉"[rem - 1]
    return "[" + cells.ljust(width, "·") + "]"


def sparkline(
    values: Sequence[float],
    width: int = 60,
    max_value: float | None = None,
) -> str:
    """A one-line Unicode sparkline of ``values``.

    Longer series are resampled to ``width`` by bucket means (each
    output glyph averages a contiguous slice, so a narrow spike dims
    rather than disappears).  Values are scaled against ``max_value``
    (default: the series peak); negatives clamp to the baseline.

    Example::

        ▁▂▄▇██▇▅▃▂▁
    """
    if not values:
        return ""
    if len(values) > width:
        n = len(values)
        buckets = []
        for i in range(width):
            lo, hi = i * n // width, (i + 1) * n // width
            chunk = values[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        values = buckets
    peak = max_value if max_value is not None else max(values)
    if peak <= 0:
        return _SPARK_GLYPHS[0] * len(values)
    top = len(_SPARK_GLYPHS) - 1
    return "".join(
        _SPARK_GLYPHS[min(top, round(max(0.0, v) / peak * top))] for v in values
    )


def bar_chart(
    data: Mapping[str, float],
    title: str | None = None,
    width: int = 50,
    max_value: float | None = None,
) -> str:
    """Horizontal bars, one per labelled value.

    Example::

        NP   |██████████████████████ 0.073
        PREF |██████████████████ 0.060
    """
    if not data:
        return title or ""
    peak = max_value if max_value is not None else max(data.values())
    peak = peak or 1.0
    label_w = max(len(k) for k in data)
    lines = [title] if title else []
    for label, value in data.items():
        filled = int(round(width * max(0.0, value) / peak))
        lines.append(f"{label.ljust(label_w)} |{_FULL * filled} {_fmt(value)}")
    return "\n".join(lines)


def stacked_bar_chart(
    data: Mapping[str, Mapping[str, float]],
    title: str | None = None,
    width: int = 60,
) -> str:
    """Stacked horizontal bars with a glyph legend (Figure 3 style).

    ``data`` maps bar label -> ordered component mapping; components are
    drawn with distinct fill glyphs and a legend is appended.
    """
    if not data:
        return title or ""
    components: list[str] = []
    for comps in data.values():
        for name in comps:
            if name not in components:
                components.append(name)
    glyph = {name: _STACK_GLYPHS[i % len(_STACK_GLYPHS)] for i, name in enumerate(components)}
    peak = max((sum(c.values()) for c in data.values()), default=1.0) or 1.0
    label_w = max(len(k) for k in data)

    lines = [title] if title else []
    for label, comps in data.items():
        bar = ""
        for name in components:
            value = comps.get(name, 0.0)
            bar += glyph[name] * int(round(width * max(0.0, value) / peak))
        lines.append(f"{label.ljust(label_w)} |{bar} {_fmt(sum(comps.values()))}")
    legend = "  ".join(f"{glyph[name]}={name}" for name in components)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str | None = None,
    width: int = 60,
    height: int = 16,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Multi-series line plot on a character grid (Figure 2 style).

    ``series`` maps a series name to ``(x, y)`` points.  Each series is
    drawn with its own marker (its name's first letter); collisions show
    the later series.  Axes are annotated with the data ranges.
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        return title or ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    lo_x, hi_x = min(xs), max(xs)
    lo_y = y_min if y_min is not None else min(ys)
    hi_y = y_max if y_max is not None else max(ys)
    if hi_x == lo_x:
        hi_x = lo_x + 1
    if hi_y == lo_y:
        hi_y = lo_y + 1

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        col = int(round((x - lo_x) / (hi_x - lo_x) * (width - 1)))
        row = int(round((hi_y - y) / (hi_y - lo_y) * (height - 1)))
        grid[min(max(row, 0), height - 1)][min(max(col, 0), width - 1)] = marker

    # Distinct markers per series: prefer the first unused letter of the
    # name, falling back to a symbol palette.
    markers: dict[str, str] = {}
    palette = list("*+ox#%@&")
    for name in series:
        chosen = next(
            (ch.upper() for ch in name if ch.isalnum() and ch.upper() not in markers.values()),
            None,
        )
        if chosen is None:
            chosen = next((p for p in palette if p not in markers.values()), "*")
        markers[name] = chosen

    for name, pts in series.items():
        marker = markers[name]
        ordered = sorted(pts)
        # Linear interpolation between consecutive points for a line feel.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            steps = max(2, int((x1 - x0) / (hi_x - lo_x) * width)) if hi_x > lo_x else 2
            for i in range(steps + 1):
                t = i / steps
                plot(x0 + t * (x1 - x0), y0 + t * (y1 - y0), marker)
        for x, y in ordered:
            plot(x, y, marker)

    lines = [title] if title else []
    lines.append(f"{_fmt(hi_y):>8} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{_fmt(lo_y):>8} ┤" + "".join(grid[-1]))
    lines.append(" " * 8 + " └" + "─" * width)
    lines.append(" " * 10 + f"{_fmt(lo_x)}".ljust(width - 8) + f"{_fmt(hi_x)}")
    legend = "  ".join(f"{markers[name]}={name}" for name in series)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
