"""Cross-run comparisons: relative execution times and speedups.

Everything in the paper's Figure 2 and the headline results is a
comparison of a prefetching run against the NP run on the *same* machine
and workload; these helpers centralise that arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.metrics.results import RunMetrics

__all__ = ["RunComparison", "compare_runs", "speedup_table"]


@dataclass(frozen=True)
class RunComparison:
    """A prefetching run measured against its NP baseline.

    Attributes:
        workload / strategy: identity of the compared run.
        relative_exec_time: strategy execution time / NP execution time
            (Figure 2's y-axis; < 1 means prefetching helped).
        speedup: the reciprocal, NP / strategy.
        cpu_miss_reduction: fractional drop in CPU miss rate vs. NP.
        adjusted_miss_reduction: same for the adjusted CPU miss rate.
        total_miss_increase: fractional *rise* in total miss rate vs. NP.
    """

    workload: str
    strategy: str
    relative_exec_time: float
    speedup: float
    cpu_miss_reduction: float
    adjusted_miss_reduction: float
    total_miss_increase: float


def compare_runs(baseline: RunMetrics, run: RunMetrics) -> RunComparison:
    """Compare ``run`` against its no-prefetching ``baseline``."""
    if baseline.workload != run.workload:
        raise ReproError(
            f"cannot compare across workloads ({baseline.workload!r} vs {run.workload!r})"
        )
    if baseline.exec_cycles <= 0:
        raise ReproError("baseline run has no execution time")

    def reduction(before: float, after: float) -> float:
        return (before - after) / before if before else 0.0

    rel = run.exec_cycles / baseline.exec_cycles
    return RunComparison(
        workload=run.workload,
        strategy=run.strategy,
        relative_exec_time=rel,
        speedup=1.0 / rel if rel else float("inf"),
        cpu_miss_reduction=reduction(baseline.cpu_miss_rate, run.cpu_miss_rate),
        adjusted_miss_reduction=reduction(
            baseline.adjusted_cpu_miss_rate, run.adjusted_cpu_miss_rate
        ),
        total_miss_increase=-reduction(baseline.total_miss_rate, run.total_miss_rate),
    )


def speedup_table(
    runs_by_strategy: dict[str, RunMetrics], baseline_name: str = "NP"
) -> dict[str, RunComparison]:
    """Compare every non-baseline run in a dict keyed by strategy name."""
    baseline = runs_by_strategy.get(baseline_name)
    if baseline is None:
        raise ReproError(f"no baseline run named {baseline_name!r} supplied")
    return {
        name: compare_runs(baseline, run)
        for name, run in runs_by_strategy.items()
        if name != baseline_name
    }
