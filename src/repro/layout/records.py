"""Record (struct) types with named fields and computed offsets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = ["FieldSpec", "RecordType"]

#: Natural alignment applied to every field (one word).
_FIELD_ALIGN = 4


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class FieldSpec:
    """One field of a record.

    Attributes:
        name: field name, unique within the record.
        size: size in bytes (word-aligned in the layout).
        count: for small inline arrays, the number of elements; the field
            occupies ``size * count`` bytes and is addressed per element.
    """

    name: str
    size: int = 4
    count: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(f"field {self.name!r}: size must be >= 1")
        if self.count < 1:
            raise ConfigurationError(f"field {self.name!r}: count must be >= 1")

    @property
    def total_size(self) -> int:
        """Bytes occupied by the whole field (all elements)."""
        return self.size * self.count


class RecordType:
    """A struct-like record with word-aligned fields.

    Args:
        name: type name (for diagnostics).
        fields: ordered field specs.
        pad_to: if given, the record size is rounded up to a multiple of
            this value.  Padding records to the cache-line size is the
            core of the false-sharing-elimination restructuring.

    Example:
        >>> particle = RecordType("particle", [
        ...     FieldSpec("pos", 4, 3), FieldSpec("vel", 4, 3), FieldSpec("cell", 4),
        ... ])
        >>> particle.size
        28
        >>> particle.offset("vel", 1)
        16
    """

    def __init__(self, name: str, fields: list[FieldSpec], pad_to: int | None = None) -> None:
        if not fields:
            raise ConfigurationError(f"record {name!r} must have at least one field")
        self.name = name
        self.fields = tuple(fields)
        self._offsets: dict[str, int] = {}
        offset = 0
        for spec in fields:
            if spec.name in self._offsets:
                raise ConfigurationError(f"record {name!r}: duplicate field {spec.name!r}")
            offset = _align_up(offset, _FIELD_ALIGN)
            self._offsets[spec.name] = offset
            offset += spec.total_size
        size = _align_up(offset, _FIELD_ALIGN)
        if pad_to is not None:
            if pad_to < 1:
                raise ConfigurationError(f"record {name!r}: pad_to must be >= 1")
            size = _align_up(size, pad_to)
        self.size = size
        self._field_specs = {spec.name: spec for spec in fields}

    def padded(self, pad_to: int) -> "RecordType":
        """A copy of this record type padded to a multiple of ``pad_to``."""
        return RecordType(self.name, list(self.fields), pad_to=pad_to)

    def offset(self, field: str, element: int = 0) -> int:
        """Byte offset of ``field[element]`` within the record."""
        spec = self._field_specs.get(field)
        if spec is None:
            raise ConfigurationError(f"record {self.name!r} has no field {field!r}")
        if not 0 <= element < spec.count:
            raise ConfigurationError(
                f"record {self.name!r}.{field}: element {element} out of range [0, {spec.count})"
            )
        return self._offsets[field] + element * spec.size

    def field_size(self, field: str) -> int:
        """Size in bytes of one element of ``field``."""
        spec = self._field_specs.get(field)
        if spec is None:
            raise ConfigurationError(f"record {self.name!r} has no field {field!r}")
        return spec.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordType({self.name!r}, size={self.size})"


#: A bare one-word record, convenient for plain scalar/int arrays.
WORD = RecordType("word", [FieldSpec("value", 4)])
