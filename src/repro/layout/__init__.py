"""Memory-layout modelling: data structures mapped to byte addresses.

The workload kernels are real programs over synthetic data; this package
gives them a C-like memory model -- records with fields, arrays of
records, bump allocation into shared / private / sync regions -- so their
reference streams have the spatial structure of compiled code.  False
sharing arises here mechanically (two CPUs' fields co-resident in one
cache line), and the Jeremiassen–Eggers-style restructuring is expressed
as layout transformations: record padding and per-CPU grouping.
"""

from repro.layout.records import FieldSpec, RecordType
from repro.layout.allocator import Allocator
from repro.layout.arrays import ArrayHandle
from repro.layout.memory import MemoryLayout

__all__ = [
    "Allocator",
    "ArrayHandle",
    "FieldSpec",
    "MemoryLayout",
    "RecordType",
]
