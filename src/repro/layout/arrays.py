"""Array handles: addressable arrays of records."""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.layout.records import RecordType

__all__ = ["ArrayHandle"]


class ArrayHandle:
    """An array of ``count`` records of type ``record`` starting at ``base``.

    The handle resolves ``(index, field, element)`` to a byte address; the
    workload kernels use it everywhere they would index an array in C.

    Attributes:
        name: array label (diagnostics and footprint reports).
        base: address of element 0.
        record: the element record type.
        count: number of elements.
        shared: whether the array lives in shared memory (propagated onto
            the emitted references).
    """

    __slots__ = ("name", "base", "record", "count", "shared", "stride")

    def __init__(self, name: str, base: int, record: RecordType, count: int, shared: bool) -> None:
        if count < 1:
            raise ConfigurationError(f"array {name!r}: count must be >= 1")
        self.name = name
        self.base = base
        self.record = record
        self.count = count
        self.shared = shared
        self.stride = record.size

    @property
    def size_bytes(self) -> int:
        """Total footprint of the array in bytes."""
        return self.stride * self.count

    def addr(self, index: int, field: str | None = None, element: int = 0) -> int:
        """Byte address of ``array[index].field[element]``.

        With ``field=None`` the first field's address (the record base) is
        returned.
        """
        if not 0 <= index < self.count:
            raise ConfigurationError(
                f"array {self.name!r}: index {index} out of range [0, {self.count})"
            )
        base = self.base + index * self.stride
        if field is None:
            return base
        return base + self.record.offset(field, element)

    def field_size(self, field: str) -> int:
        """Size of one element of ``field`` in bytes."""
        return self.record.field_size(field)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayHandle({self.name!r}, base={self.base:#x}, count={self.count}, "
            f"stride={self.stride}, shared={self.shared})"
        )
