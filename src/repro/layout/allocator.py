"""Bump allocator for carving data structures out of an address region."""

from __future__ import annotations

from repro.common.errors import ConfigurationError

__all__ = ["Allocator"]


class Allocator:
    """A simple bump allocator over ``[base, base + limit)``.

    Args:
        base: first byte address of the region.
        limit: region size in bytes (allocation past it raises).
        name: region label for error messages.
    """

    def __init__(self, base: int, limit: int, name: str = "region") -> None:
        if limit <= 0:
            raise ConfigurationError(f"allocator {name!r}: limit must be positive")
        self.base = base
        self.limit = limit
        self.name = name
        self._next = base

    @property
    def used(self) -> int:
        """Bytes allocated so far."""
        return self._next - self.base

    def allocate(self, size: int, align: int = 4) -> int:
        """Reserve ``size`` bytes aligned to ``align``; return the address."""
        if size < 0:
            raise ConfigurationError(f"allocator {self.name!r}: negative size {size}")
        if align < 1 or (align & (align - 1)):
            raise ConfigurationError(f"allocator {self.name!r}: align must be a power of two")
        addr = (self._next + align - 1) & ~(align - 1)
        end = addr + size
        if end > self.base + self.limit:
            raise ConfigurationError(
                f"allocator {self.name!r} exhausted: need {size} bytes at {addr:#x}, "
                f"region ends at {self.base + self.limit:#x}"
            )
        self._next = end
        return addr
