"""The per-workload memory layout: regions, arrays, locks and barriers.

A :class:`MemoryLayout` owns one shared-region allocator, one sync-region
allocator, and one private allocator per CPU, and hands out
:class:`~repro.layout.arrays.ArrayHandle` objects and lock/barrier
addresses.  Restructuring support:

* ``shared_array(..., pad_to_line=True)`` pads the element record to the
  cache-line size so no two elements share a line;
* ``per_cpu_shared_array`` allocates each CPU's slice of a logically
  shared array contiguously (blocked by CPU) instead of interleaved,
  optionally line-aligning each slice -- the "group per-processor data"
  half of the Jeremiassen–Eggers transformation.
"""

from __future__ import annotations

from repro.common.addressing import AddressSpace
from repro.common.errors import ConfigurationError
from repro.layout.allocator import Allocator
from repro.layout.arrays import ArrayHandle
from repro.layout.records import RecordType

__all__ = ["MemoryLayout"]

_DEFAULT_REGION_LIMIT = 0x0800_0000


class MemoryLayout:
    """Address-space management for one workload instance.

    Args:
        num_cpus: processor count (one private region each).
        block_size: cache-line size, used for line padding/alignment.
        address_space: region boundaries (defaults are fine for all
            built-in workloads).
    """

    def __init__(
        self,
        num_cpus: int,
        block_size: int = 32,
        address_space: AddressSpace | None = None,
        private_set_offset: int = 24 * 1024,
    ) -> None:
        """Args:
            private_set_offset: byte offset applied to each CPU's private
                allocation base.  Region bases are multiples of the cache
                size, so without an offset every region starts at cache
                set 0 and private data systematically aliases the first
                shared arrays -- a placement artifact, not program
                behaviour.  The offset staggers private data into a
                different part of the cache; workloads whose originals
                *do* exhibit private/shared interference (Topopt) pass a
                deliberately overlapping value.
        """
        if num_cpus < 1:
            raise ConfigurationError("num_cpus must be >= 1")
        if private_set_offset < 0:
            raise ConfigurationError("private_set_offset must be >= 0")
        self.num_cpus = num_cpus
        self.block_size = block_size
        self.space = address_space or AddressSpace()
        self._shared = Allocator(self.space.shared_base, _DEFAULT_REGION_LIMIT, "shared")
        self._sync = Allocator(self.space.sync_base, _DEFAULT_REGION_LIMIT, "sync")
        self._private = [
            Allocator(
                self.space.private_region(cpu) + private_set_offset,
                self.space.private_stride - private_set_offset,
                f"private[{cpu}]",
            )
            for cpu in range(num_cpus)
        ]
        self._arrays: list[ArrayHandle] = []
        self._next_lock_id = 0
        self._next_barrier_id = 0

    # ------------------------------------------------------------------ data

    def shared_array(
        self,
        name: str,
        record: RecordType,
        count: int,
        pad_to_line: bool = False,
        line_align: bool = True,
    ) -> ArrayHandle:
        """Allocate a shared array of ``count`` records.

        Args:
            pad_to_line: pad each element to the cache-line size (the
                false-sharing-elimination restructuring for arrays whose
                elements are written by different CPUs).
            line_align: align the array base to a line boundary (on by
                default so that element/line geometry is deterministic).
        """
        rec = record.padded(self.block_size) if pad_to_line else record
        align = self.block_size if line_align else 4
        base = self._shared.allocate(rec.size * count, align)
        handle = ArrayHandle(name, base, rec, count, shared=True)
        self._arrays.append(handle)
        return handle

    def private_array(self, cpu: int, name: str, record: RecordType, count: int) -> ArrayHandle:
        """Allocate a private array in CPU ``cpu``'s region."""
        base = self._private[cpu].allocate(record.size * count, 4)
        handle = ArrayHandle(f"{name}[cpu{cpu}]", base, record, count, shared=False)
        self._arrays.append(handle)
        return handle

    def per_cpu_shared_array(
        self,
        name: str,
        record: RecordType,
        count_per_cpu: int,
        line_align_slices: bool = True,
    ) -> list[ArrayHandle]:
        """Allocate a logically shared array blocked by CPU.

        Each CPU gets a contiguous slice of ``count_per_cpu`` elements,
        optionally aligned to a line boundary so slices never share a
        cache line with a neighbour's slice.  This is the restructured
        layout; the unrestructured counterpart is a single
        :meth:`shared_array` indexed ``cpu + i * num_cpus`` (interleaved),
        which is exactly what produces false sharing.
        """
        slices: list[ArrayHandle] = []
        for cpu in range(self.num_cpus):
            align = self.block_size if line_align_slices else 4
            base = self._shared.allocate(record.size * count_per_cpu, align)
            slices.append(ArrayHandle(f"{name}[cpu{cpu}]", base, record, count_per_cpu, shared=True))
        self._arrays.extend(slices)
        return slices

    # ------------------------------------------------------------------ sync

    def new_lock(self) -> tuple[int, int]:
        """Allocate a lock; returns ``(lock_id, lock_addr)``.

        Lock words are line-padded: each lock occupies its own cache line
        (standard practice even in 1993-era libraries, and it keeps lock
        traffic from polluting the false-sharing statistics).
        """
        lock_id = self._next_lock_id
        self._next_lock_id += 1
        addr = self._sync.allocate(4, self.block_size)
        return lock_id, addr

    def new_lock_array(self, count: int) -> list[tuple[int, int]]:
        """Allocate ``count`` locks (e.g. one per hash bucket or cell)."""
        return [self.new_lock() for _ in range(count)]

    def new_barrier(self) -> tuple[int, int]:
        """Allocate a barrier; returns ``(barrier_id, counter_addr)``."""
        barrier_id = self._next_barrier_id
        self._next_barrier_id += 1
        addr = self._sync.allocate(4, self.block_size)
        return barrier_id, addr

    # ------------------------------------------------------------- reporting

    @property
    def shared_bytes(self) -> int:
        """Bytes of shared data allocated so far (excluding sync)."""
        return self._shared.used

    @property
    def private_bytes(self) -> int:
        """Total private bytes allocated across CPUs."""
        return sum(a.used for a in self._private)

    def arrays(self) -> list[ArrayHandle]:
        """All allocated array handles (for footprint reports)."""
        return list(self._arrays)

    def describe_arrays(self) -> list[dict[str, object]]:
        """JSON-friendly map of every allocated array.

        Attached to generated traces as ``metadata["arrays"]`` so the
        analysis tools (:mod:`repro.analysis`) can attribute misses and
        sharing back to named program data structures.
        """
        return [
            {
                "name": a.name,
                "base": a.base,
                "size": a.size_bytes,
                "stride": a.stride,
                "count": a.count,
                "shared": a.shared,
            }
            for a in self._arrays
        ]
