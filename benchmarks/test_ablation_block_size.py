"""Ablation: block-size sweep (paper section 3.3's aside).

"Larger block sizes increased false sharing and thus the total number
of invalidation misses."  The program (and its data layout, padded for
32-byte lines as the original was compiled for) is held fixed while the
machine's line size varies -- exactly the situation that produces false
sharing in the field.
"""

from dataclasses import replace

from repro.common.config import CacheConfig
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import NP

BLOCK_SIZES = (16, 32, 64, 128)


def test_ablation_block_size(benchmark, ablation_runner, save_result):
    def sweep():
        out = {}
        for block in BLOCK_SIZES:
            machine = replace(
                ablation_runner.base_machine(), cache=CacheConfig(block_size=block)
            )
            run = ablation_runner.run("Pverify", NP, machine)
            out[block] = {
                "false_sharing_mr": run.false_sharing_miss_rate,
                "invalidation_mr": run.invalidation_miss_rate,
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{b} B", round(r["false_sharing_mr"], 4), round(r["invalidation_mr"], 4)]
        for b, r in result.items()
    ]
    save_result(
        "ablation_block_size",
        format_table(
            ["Block", "False-sharing MR", "Invalidation MR"],
            rows,
            title="Ablation: block size (Pverify NP, 8-cycle transfer)",
        ),
    )

    fs = [result[b]["false_sharing_mr"] for b in BLOCK_SIZES]
    # False sharing grows with block size across the sweep.
    assert fs[-1] > 1.3 * fs[1], fs
    assert fs[1] > fs[0] * 0.8  # 16 -> 32 at least doesn't invert wildly
    assert all(v >= 0 for v in fs)
