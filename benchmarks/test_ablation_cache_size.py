"""Ablation: cache-size sweep (paper section 3.3's aside).

"With larger caches, non-sharing misses were reduced, making
invalidation miss effects much more dominant."  We sweep 8 KB - 128 KB
at the 8-cycle transfer and check exactly that.
"""

from dataclasses import replace

from repro.common.config import CacheConfig
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import NP

SIZES_KB = (8, 16, 32, 64, 128)


def test_ablation_cache_size(benchmark, ablation_runner, save_result):
    def sweep():
        out = {}
        for size_kb in SIZES_KB:
            machine = replace(
                ablation_runner.base_machine(),
                cache=CacheConfig(size_bytes=size_kb * 1024),
            )
            run = ablation_runner.run("Mp3d", NP, machine)
            mc = run.miss_counts
            refs = run.demand_refs
            out[size_kb] = {
                "nonsharing": mc.nonsharing / refs,
                "invalidation": mc.invalidation / refs,
                "inval_fraction": mc.invalidation / max(1, mc.cpu_misses),
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{kb} KB", round(r["nonsharing"], 4), round(r["invalidation"], 4), round(r["inval_fraction"], 2)]
        for kb, r in result.items()
    ]
    save_result(
        "ablation_cache_size",
        format_table(
            ["Cache", "Non-sharing MR", "Invalidation MR", "Inval fraction of misses"],
            rows,
            title="Ablation: cache size (Mp3d NP, 8-cycle transfer)",
        ),
    )

    # Non-sharing misses shrink with cache size ...
    ns = [result[kb]["nonsharing"] for kb in SIZES_KB]
    assert ns[0] > 1.5 * ns[-1], ns
    # ... while the invalidation component's share of misses grows.
    frac = [result[kb]["inval_fraction"] for kb in SIZES_KB]
    assert frac[-1] > frac[0], frac
    assert frac[-1] > 0.6
