"""Extension bench: bandwidth-adaptive throttling (ADAPT).

Replays the Figure 2/3 workload x bus-speed grid with ADAPT alongside
NP, PREF and PWS (see :mod:`repro.experiments.adaptive`), renders the
sweep to ``results/extension_adaptive.txt``/``.json`` and asserts the
PR 7 acceptance claim: at the 32-cycle bus, ADAPT holds its measured
utilization at or below the configured ceiling *and* beats PREF's
speedup on at least two workloads -- while on the fast bus (where
sustained utilization sits far below the ceiling) it keeps nearly all
of PWS's speedup, shedding at most a burst-transient sliver of
prefetches.

The grid runs at the drift gate's quick frame (12 CPUs, scale 0.25,
4- and 32-cycle transfers), where the claim was calibrated.
"""

import json

from repro.experiments import adaptive
from repro.experiments.runner import ExperimentRunner

FAST, SLOW = adaptive.QUICK_LATENCIES


def test_extension_adaptive(benchmark, results_dir, save_result):
    runner = ExperimentRunner(
        num_cpus=adaptive.QUICK_CPUS,
        seed=42,
        scale=adaptive.QUICK_SCALE,
        disk_cache=results_dir / ".cache",
    )
    result = benchmark.pedantic(
        lambda: adaptive.run(runner, transfer_latencies=(FAST, SLOW)),
        rounds=1,
        iterations=1,
    )
    save_result("extension_adaptive", adaptive.render(result))
    (results_dir / "extension_adaptive.json").write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    # The headline acceptance claim: utilization held at/below the
    # ceiling AND speedup above PREF, on >= 2 workloads at the slow bus.
    qualifying = result.qualifying_workloads()
    assert result.claim_holds, (
        f"ADAPT claim failed: only {qualifying} qualify at {SLOW}-cycle bus"
    )

    for workload, by_strategy in result.cells.items():
        adapt_fast = by_strategy["ADAPT"][FAST]
        pws_fast = by_strategy["PWS"][FAST]
        # Fast bus: sustained utilization sits far below the ceiling, so
        # the throttle engages only in brief bursts -- ADAPT keeps
        # nearly all of PWS's insertion and nearly all of its speedup.
        drop_rate = adapt_fast.prefetch_drops / max(1, adapt_fast.prefetches_issued)
        assert drop_rate < 0.05, (workload, drop_rate)
        assert adapt_fast.speedup > 0.95 * pws_fast.speedup, workload
        # ... and stays ahead of PREF's conservative insertion there.
        assert adapt_fast.speedup > by_strategy["PREF"][FAST].speedup, workload
        # Slow bus: same insertion as PWS, issue-time shedding only.
        adapt_slow = by_strategy["ADAPT"][SLOW]
        assert adapt_slow.prefetches_issued == by_strategy["PWS"][SLOW].prefetches_issued, workload

    for workload in qualifying:
        adapt_slow = result.cells[workload]["ADAPT"][SLOW]
        assert adapt_slow.bus_utilization <= result.ceiling, workload
        assert adapt_slow.prefetch_drops > 0, workload  # the throttle did the work
        assert adapt_slow.speedup > result.cells[workload]["PREF"][SLOW].speedup, workload
