"""Bench E7: regenerate Table 4 (restructured-program miss rates).

Acceptance shapes (paper section 4.4):

* restructuring eliminates almost all false sharing in both programs;
* invalidation miss rates drop by a large factor (paper: ~6x for
  Topopt, ~4x for Pverify);
* Topopt also improves its non-sharing behaviour (better locality);
* Pverify's non-sharing misses are essentially unchanged.
"""

from repro.experiments import table4


def test_table4_restructured_miss_rates(benchmark, runner, save_result):
    result = benchmark.pedantic(table4.run, args=(runner,), rounds=1, iterations=1)
    save_result("table4_restructured_miss_rates", table4.render(result))

    rows = result.rows
    for workload in ("Topopt", "Pverify"):
        plain = rows[(workload, False, "NP")]
        restr = rows[(workload, True, "NP")]
        # False sharing all but disappears.
        assert restr["false_sharing_mr"] < 0.15 * plain["false_sharing_mr"], workload
        # Invalidation misses drop by a large factor.
        assert restr["invalidation_mr"] < 0.65 * plain["invalidation_mr"], workload
        # CPU miss rate improves overall.
        assert restr["cpu_mr"] < plain["cpu_mr"], workload

    # Topopt's locality improves too (non-sharing down)...
    topopt_plain = rows[("Topopt", False, "NP")]
    topopt_restr = rows[("Topopt", True, "NP")]
    assert topopt_restr["nonsharing_mr"] <= topopt_plain["nonsharing_mr"] + 0.001

    # ... while Pverify's non-sharing misses stay essentially unchanged
    # ("virtually all of the improvement came from ... false sharing").
    pv_plain = rows[("Pverify", False, "NP")]
    pv_restr = rows[("Pverify", True, "NP")]
    assert abs(pv_restr["nonsharing_mr"] - pv_plain["nonsharing_mr"]) < 0.4 * pv_plain["nonsharing_mr"]

    # After restructuring, PREF approaches PWS (CPU miss rates).
    for workload in ("Topopt", "Pverify"):
        pref = rows[(workload, True, "PREF")]["cpu_mr"]
        pws = rows[(workload, True, "PWS")]["cpu_mr"]
        assert pref <= pws * 1.45, (workload, pref, pws)
