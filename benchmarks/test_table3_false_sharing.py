"""Bench E6: regenerate Table 3 (invalidation and false-sharing rates).

Acceptance shapes: sizeable false-sharing fractions for the
write-sharing workloads (the paper: over half for most benchmarks),
motivating the restructuring experiments; Water's invalidation rate is
an order of magnitude below the heavy sharers.
"""

from repro.experiments import table3


def test_table3_false_sharing(benchmark, runner, save_result):
    result = benchmark.pedantic(table3.run, args=(runner,), rounds=1, iterations=1)
    save_result("table3_false_sharing", table3.render(result))

    rows = result.rows
    # Every workload shows invalidation misses; false <= invalidation.
    for workload, row in rows.items():
        assert row["invalidation_mr"] > 0
        assert 0 <= row["false_sharing_mr"] <= row["invalidation_mr"]

    # The restructurable workloads (and LocusRoute) have false sharing
    # around or above half of their invalidations.
    for workload in ("Topopt", "LocusRoute"):
        assert result.false_fraction(workload) >= 0.45, workload
    assert result.false_fraction("Pverify") >= 0.25

    # Water's sharing is almost entirely true (sequential position
    # reads); its rates are tiny.
    assert result.false_fraction("Water") <= 0.2
    assert rows["Water"]["invalidation_mr"] < 0.35 * rows["Mp3d"]["invalidation_mr"]
