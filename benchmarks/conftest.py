"""Shared fixtures for the benchmark harness.

One session-scoped :class:`ExperimentRunner` backs every table/figure
bench, so experiments that share simulation configurations (Figure 1,
Figure 3 and Table 3 all use the 8-cycle machine, Figure 2 and Table 2
share the sweep) are simulated exactly once.  Each bench renders its
table to ``results/`` so the paper-shaped outputs survive the run.

Ablation benches use a second, lighter runner (reduced workload scale)
because each ablation point is a distinct machine that shares nothing.

Both runners persist results under ``results/.cache/`` (keyed by the
full simulation input, including the engine version), so a re-run of an
already-simulated session costs seconds.  Set ``REPRO_BENCH_WORKERS=N``
to fan uncached grid points out over N worker processes; the default is
serial.  Neither knob changes any number in ``results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentRunner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The paper-scale runner shared by the table/figure benches."""
    return ExperimentRunner(max_workers=_WORKERS, disk_cache=RESULTS_DIR / ".cache")


@pytest.fixture(scope="session")
def ablation_runner() -> ExperimentRunner:
    """A lighter runner for the ablation sweeps."""
    return ExperimentRunner(
        scale=0.5, max_workers=_WORKERS, disk_cache=RESULTS_DIR / ".cache"
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Write a rendered experiment table under results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _save
