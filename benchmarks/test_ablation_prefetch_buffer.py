"""Ablation: prefetch-buffer depth.

The paper's 16-deep buffer was "sufficiently large to almost always
prevent the processor from stalling because the buffer was full"; this
sweep shows the stalls a shallow buffer would have caused, and that 16
is indeed past the knee.  PWS (the most prefetch-hungry discipline) on
Mp3d provides the pressure.
"""

from dataclasses import replace

from repro.common.config import PrefetchConfig
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import PWS

DEPTHS = (1, 2, 4, 8, 16, 32)


def test_ablation_prefetch_buffer(benchmark, ablation_runner, save_result):
    def sweep():
        out = {}
        for depth in DEPTHS:
            machine = replace(
                ablation_runner.base_machine(),
                prefetch=PrefetchConfig(buffer_depth=depth),
            )
            run = ablation_runner.run("Mp3d", PWS, machine)
            out[depth] = {
                "stalls": sum(c.prefetch_buffer_stalls for c in run.per_cpu),
                "exec_cycles": run.exec_cycles,
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[d, r["stalls"], r["exec_cycles"]] for d, r in result.items()]
    save_result(
        "ablation_prefetch_buffer",
        format_table(
            ["Depth", "Buffer-full stalls", "Exec cycles"],
            rows,
            title="Ablation: prefetch buffer depth (Mp3d PWS, 8-cycle transfer)",
        ),
    )

    stalls = [result[d]["stalls"] for d in DEPTHS]
    # Shallow buffers stall; stalls decrease with depth.
    assert stalls[0] > stalls[-1]
    assert all(b <= a for a, b in zip(stalls, stalls[1:])), stalls
    # The paper's 16 is past the knee: almost no stalls, and doubling
    # the depth buys nothing measurable.
    assert result[16]["stalls"] <= 0.02 * max(1, result[1]["stalls"])
    assert abs(result[32]["exec_cycles"] - result[16]["exec_cycles"]) <= 0.01 * result[16]["exec_cycles"]
