"""Bench E9: processor utilizations before prefetching (section 4.2).

Acceptance shapes: Water sits far above the pack (paper 0.81-0.82) and
gains the least; the memory-bound workloads have large theoretical
headroom (paper: up to 4.5x for Mp3d) of which prefetching realises
only a small part -- the paper's core argument that the bus, not the
prediction, is the limit.
"""

from repro.experiments import utilization


def test_processor_utilization(benchmark, runner, save_result):
    result = benchmark.pedantic(utilization.run, args=(runner,), rounds=1, iterations=1)
    save_result("processor_utilization", utilization.render(result))

    rows = result.rows
    # Water is the high-utilization outlier at both bus speeds.
    for other in ("Topopt", "Mp3d", "LocusRoute", "Pverify"):
        assert rows["Water"]["util_fast"] > 1.8 * rows[other]["util_fast"], other
        assert rows["Water"]["util_slow"] > 1.8 * rows[other]["util_slow"], other

    # Utilization falls as the bus slows (queueing lengthens misses).
    for workload, row in rows.items():
        assert row["util_slow"] <= row["util_fast"] + 0.02, workload

    # Achieved speedups fall far short of the utilization bound for the
    # memory-bound workloads (the paper: Mp3d "fell far short of the
    # maximum potential speedup possible").
    for workload in ("Mp3d", "Pverify"):
        row = rows[workload]
        assert row["achieved_fast"] < 0.55 * row["max_speedup_fast"], workload
        assert row["achieved_slow"] < 0.35 * row["max_speedup_slow"], workload

    # Water's small headroom is partially realised.
    water = rows["Water"]
    assert water["max_speedup_fast"] < 2.2
    assert 1.0 <= water["achieved_fast"] <= water["max_speedup_fast"] + 0.05
