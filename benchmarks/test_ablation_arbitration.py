"""Ablation: bus arbitration policy.

The paper's bus "favors blocking loads over prefetches".  Dropping that
priority (pure round-robin) lets prefetch transfers delay demand
misses; under a prefetch-heavy discipline near saturation, demand
latency (and execution time) should suffer, never improve.
"""

from dataclasses import replace

from repro.common.config import BusConfig
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import PWS


def test_ablation_arbitration(benchmark, ablation_runner, save_result):
    def sweep():
        out = {}
        for priority in (True, False):
            machine = replace(
                ablation_runner.base_machine(),
                bus=BusConfig(transfer_cycles=16, demand_priority=priority),
            )
            run = ablation_runner.run("Mp3d", PWS, machine)
            out[priority] = {
                "exec_cycles": run.exec_cycles,
                "demand_ops": run.bus.demand_ops,
                "wait_cycles": run.bus.total_wait_cycles,
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        ["demand-priority" if p else "round-robin-only", r["exec_cycles"], r["wait_cycles"]]
        for p, r in result.items()
    ]
    save_result(
        "ablation_arbitration",
        format_table(
            ["Arbitration", "Exec cycles", "Total bus wait cycles"],
            rows,
            title="Ablation: demand priority vs pure round-robin (Mp3d PWS, 16-cycle transfer)",
        ),
    )

    with_priority = result[True]["exec_cycles"]
    without = result[False]["exec_cycles"]
    # Demand priority never hurts, and helps under prefetch pressure.
    assert with_priority <= without * 1.01, (with_priority, without)
