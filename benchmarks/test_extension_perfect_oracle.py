"""Extension bench: the perfect-knowledge prefetcher bound.

Section 2 argues that predicting invalidation misses "will be more
difficult than predicting other types of misses."  The complementary
bound: insert prefetches for *exactly the misses an NP run takes*
(including every invalidation miss) and measure the gain.  The point of
the exercise is the paper's thesis sharpened: even perfect prediction
leaves most of the utilization headroom on the table on a bus-based
machine -- the residue is queuing, prefetch-in-progress latency and
re-invalidation, not prediction quality.
"""

from repro.metrics.formatting import format_table
from repro.prefetch.insertion import insert_prefetches
from repro.prefetch.oracle import insert_perfect_prefetches
from repro.prefetch.strategies import NP, PWS
from repro.sim.engine import simulate

WORKLOADS = ("Mp3d", "Pverify")


def test_extension_perfect_oracle(benchmark, ablation_runner, save_result):
    machine = ablation_runner.base_machine().with_transfer_cycles(4)  # fastest bus

    def sweep():
        out = {}
        for workload in WORKLOADS:
            trace = ablation_runner.clean_trace(workload)
            base = ablation_runner.run(workload, NP, machine)
            pws = ablation_runner.run(workload, PWS, machine)
            oracle_trace, report = insert_perfect_prefetches(trace, machine)
            oracle = simulate(oracle_trace, machine, strategy_name="ORACLE")
            out[workload] = {
                "np_util": base.processor_utilization,
                "pws_speedup": base.exec_cycles / pws.exec_cycles,
                "oracle_speedup": base.exec_cycles / oracle.exec_cycles,
                "headroom": 1.0 / base.processor_utilization,
                "oracle_adj_mr": oracle.adjusted_cpu_miss_rate,
                "np_mr": base.cpu_miss_rate,
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            wl,
            round(r["np_util"], 2),
            round(r["headroom"], 2),
            round(r["pws_speedup"], 2),
            round(r["oracle_speedup"], 2),
            round(r["oracle_adj_mr"] / r["np_mr"], 2),
        ]
        for wl, r in result.items()
    ]
    save_result(
        "extension_perfect_oracle",
        format_table(
            ["Workload", "NP util", "Headroom", "PWS speedup", "ORACLE speedup", "residual MR frac"],
            rows,
            title="Extension: perfect-knowledge prefetching bound (4-cycle transfer)",
        ),
    )

    for workload, r in result.items():
        # Perfect knowledge is competitive with the paper's best
        # strategy -- but not strictly better everywhere: PWS prefetches
        # hot write-shared lines *redundantly*, so on heavily
        # re-invalidated data (Pverify) it can beat a one-shot perfect
        # prediction whose prefetched line is invalidated again before
        # use.  Prediction is not the bottleneck either way.
        assert r["oracle_speedup"] >= r["pws_speedup"] - 0.15, workload
        assert r["oracle_speedup"] > 1.2, workload
        # Perfect knowledge covers most of the NP misses ...
        assert r["oracle_adj_mr"] < 0.55 * r["np_mr"], workload
        # ... and still realises well under the utilization headroom:
        # the machine, not the predictor, is the limit.
        assert r["oracle_speedup"] < 0.7 * r["headroom"], workload
