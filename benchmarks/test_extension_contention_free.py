"""Extension bench: the Mowry & Gupta comparison (section 4.2).

The paper attributes its "much smaller multiprocessor performance
improvements than Mowry and Gupta" first of all to the fact that "they
eliminated bus contention from their model by simulating only one
processor per cluster".  We make exactly that change -- same workloads,
same caches, same 100-cycle latency, but an uncontended memory system
-- and watch the prefetching speedups grow toward their range, while
the contended machine stays in the paper's.
"""

from dataclasses import replace

from repro.common.config import BusConfig
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import NP, PWS

WORKLOADS = ("Mp3d", "Pverify", "Topopt")


def test_extension_contention_free(benchmark, ablation_runner, save_result):
    def sweep():
        out = {}
        for workload in WORKLOADS:
            for contention_free in (False, True):
                machine = replace(
                    ablation_runner.base_machine(),
                    bus=BusConfig(transfer_cycles=16, contention_free=contention_free),
                )
                base = ablation_runner.run(workload, NP, machine)
                pws = ablation_runner.run(workload, PWS, machine)
                out[(workload, contention_free)] = {
                    "np_exec": base.exec_cycles,
                    "np_miss_latency": base.avg_miss_latency,
                    "pws_speedup": base.exec_cycles / pws.exec_cycles,
                }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            wl,
            "contention-free" if cf else "shared bus",
            round(r["np_miss_latency"], 1),
            round(r["pws_speedup"], 2),
        ]
        for (wl, cf), r in result.items()
    ]
    save_result(
        "extension_contention_free",
        format_table(
            ["Workload", "Memory system", "NP avg miss latency", "PWS speedup"],
            rows,
            title="Extension: shared bus vs contention-free memory (16-cycle transfer)",
        ),
    )

    for workload in WORKLOADS:
        bus = result[(workload, False)]
        free = result[(workload, True)]
        # Contention inflates the miss latency the CPU observes...
        assert bus["np_miss_latency"] > free["np_miss_latency"] + 5, workload
        # ... and removing it is what unlocks the big prefetching wins
        # (Mowry & Gupta's range), far beyond the shared-bus machine's.
        assert free["pws_speedup"] > bus["pws_speedup"] + 0.3, workload
        # NP itself also runs faster without queueing.
        assert free["np_exec"] < bus["np_exec"], workload
