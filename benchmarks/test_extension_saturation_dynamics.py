"""Extension bench: bus saturation dynamics over time.

Table 2 reports one bus-utilization number per run; the observability
subsystem (:mod:`repro.obs`) lets us watch *when* the bus saturates.
This bench runs the saturation-dynamics experiment -- NP vs. PREF vs.
PWS at 8- and 32-cycle transfers with windowed telemetry on -- renders
the sparkline view to ``results/extension_saturation_dynamics.txt`` and
asserts the dynamic signature of the paper's argument: on the slow bus
the prefetchers dwell at saturation for a large fraction of the run,
while NP and the fast bus do not.
"""

from repro.experiments import saturation


def test_extension_saturation_dynamics(benchmark, ablation_runner, save_result):
    result = benchmark.pedantic(
        lambda: saturation.run(ablation_runner),
        rounds=1,
        iterations=1,
    )
    save_result("extension_saturation_dynamics", saturation.render(result))

    fast, slow = result.transfer_latencies
    for name in result.strategies:
        for cycles in result.transfer_latencies:
            cell = result.cells[(cycles, name)]
            # Windowed telemetry reconciles with the aggregate: the mean
            # of the windowed utilizations (weighted by span) IS the
            # run's overall bus utilization.
            weighted = sum(
                u * (min(cell.exec_cycles, (w + 1) * cell.window_cycles) - w * cell.window_cycles)
                for w, u in enumerate(cell.utilization_series)
            )
            assert abs(weighted / cell.exec_cycles - cell.bus_utilization) < 1e-9

    for name in ("PREF", "PWS"):
        # Prefetch traffic eats the fast bus's headroom ...
        assert (
            result.cells[(fast, name)].bus_utilization
            > result.cells[(fast, "NP")].bus_utilization + 0.1
        ), name
        # ... and on the slow bus the prefetchers dwell at saturation
        # for most of the run (the slow bus is near-saturated even for
        # NP at 12 CPUs -- the paper's "less bandwidth headroom"):
        assert result.cells[(slow, name)].saturated_fraction > 0.5, name
        # saturation dwell grows with transfer latency for everyone.
        assert (
            result.cells[(slow, name)].saturated_fraction
            > result.cells[(fast, name)].saturated_fraction
        ), name
        # Queuing delay is where saturation hurts: prefetching deepens
        # the slow bus's already-long queue.
        assert (
            result.cells[(slow, name)].mean_queue
            > result.cells[(slow, "NP")].mean_queue + 2
        ), name
