"""Bench E3: regenerate Table 2 (selected bus utilizations).

Acceptance shapes: bus demand increases with prefetching for all
applications at all contention levels; the high-miss workloads approach
saturation at the 16/32-cycle transfers; Water stays far from it.
"""

from repro.experiments import table2
from repro.workloads.registry import ALL_WORKLOAD_NAMES


def test_table2_bus_utilization(benchmark, runner, save_result):
    result = benchmark.pedantic(table2.run, args=(runner,), rounds=1, iterations=1)
    save_result("table2_bus_utilization", table2.render(result))

    for workload in ALL_WORKLOAD_NAMES:
        by_strategy = result.utilization[workload]
        for cycles in result.transfer_latencies:
            # Prefetching never reduces bus demand.
            for strategy in ("PREF", "EXCL", "LPD", "PWS"):
                assert (
                    by_strategy[strategy][cycles] >= by_strategy["NP"][cycles] - 0.03
                ), (workload, strategy, cycles)
            # PWS is the most traffic-hungry discipline.
            assert by_strategy["PWS"][cycles] >= by_strategy["PREF"][cycles] - 0.02
        # Utilization grows with transfer latency (per strategy).
        for strategy, by_cycles in by_strategy.items():
            values = [by_cycles[c] for c in result.transfer_latencies]
            assert all(b >= a - 0.03 for a, b in zip(values, values[1:])), (
                workload,
                strategy,
                values,
            )

    # Saturation at the slow end for the memory-bound workloads...
    for workload in ("Mp3d", "Pverify", "Topopt", "LocusRoute"):
        assert result.utilization[workload]["NP"][32] > 0.9, workload
    # ... but never for Water (the paper's .38 at 32 cycles).
    assert result.utilization["Water"]["NP"][32] < 0.8
    assert result.utilization["Water"]["NP"][4] < 0.25
