"""Extension bench: dynamic line attribution vs. Table 4 restructuring.

Table 4 reports that the Jeremiassen-Eggers restructuring removes the
false-sharing misses of Topopt and Pverify; Table 3 says which misses
those are.  The per-line heat profiler (:mod:`repro.obs.lineprof`)
closes the loop from the measurement side: it blames individual data
structures for the invalidation misses, and this bench asserts that the
structures the *dynamic* profiler convicts are the ones the *static*
advisor transforms -- and that re-running on the restructured layout
collapses exactly their false-sharing misses, the measured counterpart
of Table 4's miss-rate drops.  The rendered report lands in
``results/extension_line_attribution.txt``.
"""

from repro.experiments import lineattr


def test_extension_line_attribution(benchmark, ablation_runner, save_result):
    result = benchmark.pedantic(
        lambda: lineattr.run(ablation_runner),
        rounds=1,
        iterations=1,
    )
    save_result("extension_line_attribution", lineattr.render(result))

    for workload, cell in result.cells.items():
        # Per-line attributions reconcile exactly with the end-of-run
        # aggregates on both layouts.
        assert cell.reconcile_problems == 0, workload
        # The dynamic profiler and the static advisor convict the same
        # structures (at least one agreed conviction per workload).
        assert cell.matched, workload
        # The top-blamed structure is one the advisor transforms, and
        # the restructured layout removes its false-sharing misses --
        # Table 4's story, measured per structure.
        top = cell.families[0]
        assert top.family in cell.matched, workload
        assert top.fs_misses > 0, workload
        assert top.fs_reduction >= 0.9, (workload, top.family, top.fs_reduction)
        # Restructuring shrinks ping-pong, not just the miss taxonomy.
        assert top.handoffs_restructured < top.handoffs, workload
        # Prefetching was actually exercised on the profiled runs, so
        # the efficacy ledger discriminates.
        assert sum(cell.efficacy.values()) > 0, workload
