"""Bench E10: the abstract's headline speedup extremes.

Paper: "speedups for five parallel programs were no greater than 39%,
and degradations were as high as 7%"; per-architecture maxima for the
uniprocessor-oriented strategies ranged 1.28 (fast bus) to 1.04 (slow
bus), and PWS reached 1.39.
"""

from repro.experiments import headline


def test_headline_speedups(benchmark, runner, save_result):
    result = benchmark.pedantic(headline.run, args=(runner,), rounds=1, iterations=1)
    save_result("headline_speedups", headline.render(result))

    uni = result.uniprocessor_max_by_latency
    # Uniprocessor-oriented max at the fast bus lands near 1.28 and
    # decays monotonically toward ~1 at the slow bus.
    assert 1.15 <= uni[4] <= 1.45, uni
    assert 1.0 <= uni[32] <= 1.15, uni
    values = [uni[c] for c in sorted(uni)]
    assert all(b <= a + 0.03 for a, b in zip(values, values[1:])), uni

    # No strategy ever wins big at saturation or loses catastrophically.
    assert 0.9 <= result.uniprocessor_min <= 1.05

    # PWS is the overall champion, in the paper's neighbourhood of 1.39.
    assert result.pws_max >= uni[4]
    assert 1.25 <= result.pws_max <= 1.75
    assert result.pws_min >= 0.9
