"""Bench E4: regenerate Figure 2 (relative execution times vs. latency).

Acceptance shapes (paper section 4.2):

* prefetching's benefit shrinks monotonically-ish as the bus slows,
  vanishing (or reversing) at saturation;
* the largest speedup appears at the fastest bus, bounded well below
  the utilization headroom (paper max 1.39x overall);
* no discipline improves a saturated 32-cycle machine by more than a
  sliver of what it gains at 4 cycles;
* LPD never meaningfully beats PREF (trading prefetch-in-progress
  misses for conflict misses does not pay).
"""

from repro.experiments import figure2
from repro.workloads.registry import ALL_WORKLOAD_NAMES


def test_figure2_execution_time(benchmark, runner, save_result):
    result = benchmark.pedantic(figure2.run, args=(runner,), rounds=1, iterations=1)
    save_result("figure2_execution_time", figure2.render(result))

    fast, slow = result.transfer_latencies[0], result.transfer_latencies[-1]
    for workload in ALL_WORKLOAD_NAMES:
        for strategy, by_cycles in result.relative[workload].items():
            # Benefit at the fast bus exceeds benefit at the slow bus.
            assert by_cycles[fast] <= by_cycles[slow] + 0.03, (workload, strategy)
            # At saturation prefetching is at best marginal (paper: up
            # to 7 % degradation; we accept [0.85, 1.1]).
            assert 0.85 <= by_cycles[slow] <= 1.10, (workload, strategy)

        # LPD does not beat PREF by more than noise.
        assert (
            result.relative[workload]["LPD"][fast]
            >= result.relative[workload]["PREF"][fast] - 0.03
        ), workload

    best = result.best_speedup()
    worst = result.worst_slowdown()
    # The paper's headline: best 1.39x, worst 0.93x.  Accept a band.
    assert 1.2 <= best[3] <= 1.8, best
    assert 0.9 <= worst[3] <= 1.05, worst
