"""Bench E5: regenerate Figure 3 (sources of CPU misses).

Acceptance shapes (paper sections 4.3-4.4):

* under NP, both non-sharing and invalidation components are present;
* the oracle (PREF) nearly eliminates *unprefetched non-sharing*
  misses; invalidation misses are untouched ("the limit to effective
  prefetching ... is invalidation misses on shared data");
* LPD eliminates most prefetch-in-progress misses but adds prefetched
  non-sharing (conflict) misses relative to PREF;
* only PWS substantially reduces the unprefetched-invalidation
  component.
"""

from repro.experiments import figure3


def test_figure3_miss_components(benchmark, runner, save_result):
    result = benchmark.pedantic(figure3.run, args=(runner,), rounds=1, iterations=1)
    save_result("figure3_miss_components", figure3.render(result))

    for workload, by_strategy in result.components.items():
        np_c = by_strategy["NP"]
        pref = by_strategy["PREF"]
        lpd = by_strategy["LPD"]
        pws = by_strategy["PWS"]

        # NP has no prefetch-related components.
        assert np_c["prefetch_in_progress"] == 0
        assert np_c["nonsharing_prefetched"] == 0
        assert np_c["nonsharing_unprefetched"] > 0
        assert np_c["invalidation_unprefetched"] > 0

        # The oracle covers non-sharing misses almost completely...
        assert pref["nonsharing_unprefetched"] < 0.1 * np_c["nonsharing_unprefetched"]
        # ... and leaves invalidation misses essentially alone.
        assert (
            pref["invalidation_unprefetched"]
            > 0.85 * np_c["invalidation_unprefetched"]
        ), workload

        # LPD kills prefetch-in-progress misses at the cost of more
        # prefetched-then-lost conflict misses.
        assert lpd["prefetch_in_progress"] < 0.5 * pref["prefetch_in_progress"]
        assert lpd["nonsharing_prefetched"] >= pref["nonsharing_prefetched"]

        # Only PWS attacks the invalidation component.
        assert (
            pws["invalidation_unprefetched"]
            < 0.7 * pref["invalidation_unprefetched"]
        ), workload

        # Invalidation misses are the dominant CPU-miss component under
        # the uniprocessor-oriented disciplines (the paper's key claim).
        assert (
            pref["invalidation_unprefetched"]
            > pref["nonsharing_unprefetched"] + pref["nonsharing_prefetched"]
        ), workload
