"""Ablation: prefetch distance sweep (paper section 4.3).

The paper's finding: "prefetching algorithms should strive to receive
the prefetched data exactly on time" -- short distances leave cheap
prefetch-in-progress misses, long distances (LPD) trade them for more
expensive conflict misses and do *not* pay off in execution time.
"""

from repro.metrics.formatting import format_table
from repro.prefetch.strategies import NP, PREF

DISTANCES = (25, 50, 100, 200, 400, 800)


def test_ablation_prefetch_distance(benchmark, ablation_runner, save_result):
    machine = ablation_runner.base_machine()  # 8-cycle transfer

    def sweep():
        out = {}
        base = ablation_runner.run("Mp3d", NP, machine)
        for distance in DISTANCES:
            strategy = PREF.with_distance(distance)
            run = ablation_runner.run("Mp3d", strategy, machine)
            mc = run.miss_counts
            out[distance] = {
                "relative_exec": run.exec_cycles / base.exec_cycles,
                "pf_in_progress": mc.prefetch_in_progress / run.demand_refs,
                "prefetched_lost": (
                    mc.nonsharing_prefetched
                    + mc.inval_true_prefetched
                    + mc.inval_false_prefetched
                )
                / run.demand_refs,
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [d, round(r["relative_exec"], 3), round(r["pf_in_progress"], 4), round(r["prefetched_lost"], 4)]
        for d, r in result.items()
    ]
    save_result(
        "ablation_prefetch_distance",
        format_table(
            ["Distance", "Relative exec", "PF-in-progress rate", "Prefetched-lost rate"],
            rows,
            title="Ablation: prefetch distance (Mp3d, 8-cycle transfer)",
        ),
    )

    # Prefetch-in-progress misses fall monotonically with distance.
    pip = [result[d]["pf_in_progress"] for d in DISTANCES]
    assert pip[0] > pip[-1]
    assert all(b <= a + 1e-4 for a, b in zip(pip, pip[1:])), pip
    # Prefetched-but-lost misses grow with distance.
    lost = [result[d]["prefetched_lost"] for d in DISTANCES]
    assert lost[-1] > lost[1]
    # The long distances do not beat the on-time distance on exec time.
    assert result[800]["relative_exec"] >= result[100]["relative_exec"] - 0.02
    # Every distance still improves on NP at this (unsaturated) latency.
    assert all(result[d]["relative_exec"] < 1.0 for d in DISTANCES)
