"""Bench E8: regenerate Table 5 (restructured relative execution times).

Acceptance shapes (paper section 4.4):

* restructuring alone speeds both programs up (especially Pverify);
* against the restructured baseline, prefetching still helps until the
  bus saturates;
* the gap between PREF and PWS narrows dramatically once the false
  sharing is gone ("the performance of the simplest prefetching
  algorithm approached that of the strategy tailored to write-shared
  data").
"""

from repro.experiments import table5


def test_table5_restructured_exec_time(benchmark, runner, save_result):
    result = benchmark.pedantic(table5.run, args=(runner,), rounds=1, iterations=1)
    save_result("table5_restructured_exec_time", table5.render(result))

    fast = result.transfer_latencies[0]
    slow = result.transfer_latencies[-1]

    for workload in ("Topopt", "Pverify"):
        # Restructuring alone never hurts, and helps at least somewhere.
        gains = result.restructuring_gain[workload]
        assert all(g > 0.95 for g in gains.values()), (workload, gains)
        assert max(gains.values()) > 1.15, (workload, gains)

        pref = result.relative[(workload, "PREF")]
        pws = result.relative[(workload, "PWS")]
        # Prefetching still helps the restructured program on fast buses.
        assert pref[fast] < 1.0 and pws[fast] < 1.0, workload
        # The benefit decays toward saturation.
        assert pref[slow] >= pref[fast] - 0.03, workload
        # PREF approaches PWS (the paper's closing observation): the gap
        # is far smaller than for the unrestructured programs.
        assert abs(pref[fast] - pws[fast]) < 0.18, (workload, pref[fast], pws[fast])
