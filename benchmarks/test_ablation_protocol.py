"""Ablation: the value of Illinois's private-clean state.

Section 3.3 calls the private-clean state the protocol's "most
important feature for our purposes": reads of unshared data enter
PRIVATE and later writes (or exclusive prefetches) cost no bus
operation.  Swapping in plain MSI (reads always fill SHARED) makes
every read-then-write pay an UPGRADE -- this bench measures that tax in
invalidate operations and execution time.
"""

from dataclasses import replace

from repro.metrics.formatting import format_table
from repro.prefetch.strategies import NP, PREF

WORKLOADS = ("Mp3d", "Water")


def test_ablation_protocol(benchmark, ablation_runner, save_result):
    def sweep():
        out = {}
        for workload in WORKLOADS:
            for protocol in ("illinois", "msi"):
                machine = replace(ablation_runner.base_machine(), protocol=protocol)
                base = ablation_runner.run(workload, NP, machine)
                pref = ablation_runner.run(workload, PREF, machine)
                out[(workload, protocol)] = {
                    "upgrades": base.upgrades,
                    "bus_util": base.bus_utilization,
                    "exec_cycles": base.exec_cycles,
                    "pref_rel": pref.exec_cycles / base.exec_cycles,
                }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [wl, proto, r["upgrades"], round(r["bus_util"], 2), r["exec_cycles"], round(r["pref_rel"], 3)]
        for (wl, proto), r in result.items()
    ]
    save_result(
        "ablation_protocol",
        format_table(
            ["Workload", "Protocol", "Upgrade ops (NP)", "Bus util", "Exec cycles", "PREF rel"],
            rows,
            title="Ablation: Illinois private-clean state vs plain MSI (8-cycle transfer)",
        ),
    )

    for workload in WORKLOADS:
        illinois = result[(workload, "illinois")]
        msi = result[(workload, "msi")]
        # MSI pays for read-then-write sequences with extra upgrades...
        assert msi["upgrades"] > 1.2 * illinois["upgrades"], workload
        # ... which costs execution time.  (Bus *utilization* can even
        # drop under MSI: the same transfers spread over a longer run.)
        assert msi["exec_cycles"] > illinois["exec_cycles"], workload
