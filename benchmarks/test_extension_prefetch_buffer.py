"""Extension bench: the non-snooping prefetch buffer of section 3.1.

"Prefetch buffers typically don't snoop on the bus; therefore, no
shared data can be prefetched ... For this reason our prefetching
algorithms are cache-based."  The PBUF strategy prefetches only
non-shared data (what a non-snooping buffer may safely hold); this
bench shows why the paper rejected the architecture: on these parallel
workloads nearly all prefetchable misses are to shared data, so PBUF
recovers almost nothing of what PREF gains.
"""

from repro.metrics.formatting import format_table
from repro.prefetch.strategies import NP, PBUF, PREF
from repro.workloads.registry import ALL_WORKLOAD_NAMES


def test_extension_prefetch_buffer(benchmark, ablation_runner, save_result):
    machine = ablation_runner.base_machine().with_transfer_cycles(4)

    def sweep():
        out = {}
        for workload in ALL_WORKLOAD_NAMES:
            base = ablation_runner.run(workload, NP, machine)
            pref = ablation_runner.run(workload, PREF, machine)
            pbuf = ablation_runner.run(workload, PBUF, machine)
            out[workload] = {
                "pref_speedup": base.exec_cycles / pref.exec_cycles,
                "pbuf_speedup": base.exec_cycles / pbuf.exec_cycles,
                "pref_count": pref.prefetches_issued,
                "pbuf_count": pbuf.prefetches_issued,
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [wl, round(r["pref_speedup"], 3), round(r["pbuf_speedup"], 3), r["pref_count"], r["pbuf_count"]]
        for wl, r in result.items()
    ]
    save_result(
        "extension_prefetch_buffer",
        format_table(
            ["Workload", "PREF speedup", "PBUF speedup", "PREF prefetches", "PBUF prefetches"],
            rows,
            title="Extension: non-snooping prefetch buffer (private data only, 4-cycle transfer)",
        ),
    )

    for workload, r in result.items():
        # The buffer may only prefetch a small subset of what the
        # cache-based prefetcher covers...
        assert r["pbuf_count"] <= 0.5 * max(1, r["pref_count"]), workload
        # ... and never beats it.
        assert r["pbuf_speedup"] <= r["pref_speedup"] + 0.02, workload
    # On the all-shared workload the buffer is completely useless.
    assert result["Mp3d"]["pbuf_count"] == 0
    assert abs(result["Mp3d"]["pbuf_speedup"] - 1.0) < 0.02
