"""Bench E1: regenerate Table 1 (the workload inventory)."""

from repro.experiments import table1


def test_table1_workloads(benchmark, runner, save_result):
    result = benchmark.pedantic(table1.run, args=(runner,), rounds=1, iterations=1)
    text = table1.render(result)
    save_result("table1_workloads", text)

    names = [row["program"] for row in result.rows]
    assert names == ["Topopt", "Mp3d", "LocusRoute", "Pverify", "Water"]
    by_name = {row["program"]: row for row in result.rows}
    # Paper shape: data sets are an order of magnitude down from real
    # runs but keep the key size relations -- only Topopt's shared data
    # fits the 32 KB cache comfortably; Mp3d's particle state dwarfs it.
    assert by_name["Topopt"]["shared_kbytes"] < 32
    assert by_name["Mp3d"]["shared_kbytes"] > 48
    for row in result.rows:
        assert row["processes"] == runner.num_cpus
        assert row["refs_per_cpu"] > 5_000
        assert 0 < row["write_fraction"] < 0.6
