"""Bench E2: regenerate Figure 1 (total / CPU / adjusted miss rates).

Acceptance shapes (paper section 4.2):

* CPU miss rates fall significantly under every prefetching strategy
  (paper: 37-71 % for PREF, 57-80 % for PWS; adjusted reductions are
  larger still);
* total miss rates never fall below NP's (prefetching adds traffic);
* PWS reduces CPU misses at least as much as PREF on every workload.
"""

from repro.experiments import figure1
from repro.workloads.registry import ALL_WORKLOAD_NAMES


def test_figure1_miss_rates(benchmark, runner, save_result):
    result = benchmark.pedantic(figure1.run, args=(runner,), rounds=1, iterations=1)
    save_result("figure1_miss_rates", figure1.render(result))

    for workload in ALL_WORKLOAD_NAMES:
        np_rates = result.rates[workload]["NP"]
        for strategy in ("PREF", "EXCL", "LPD", "PWS"):
            rates = result.rates[workload][strategy]
            # CPU misses fall...
            assert rates["cpu"] < np_rates["cpu"], (workload, strategy)
            # ... adjusted falls at least as much ...
            assert rates["adjusted"] <= rates["cpu"] + 1e-9
            # ... and total demand on the bus does not fall.
            assert rates["total"] >= np_rates["total"] - 0.003, (workload, strategy)

        # Substantial reductions, in the paper's ranges (we accept a
        # wider band: the substrate is synthetic).
        pref_red = result.reduction(workload, "PREF", "adjusted")
        pws_red = result.reduction(workload, "PWS", "adjusted")
        assert 0.15 <= pref_red <= 0.95, (workload, pref_red)
        assert pws_red >= pref_red - 0.02, (workload, pws_red, pref_red)
        assert pws_red >= 0.3, (workload, pws_red)
