"""Ablation: the section 4.3 victim-cache hypothesis.

"The magnitude of this conflict [between prefetched data and the
current working set] would likely be reduced by a victim cache or a
set-associative cache."  We test both mitigations under LPD (the
discipline that maximises prefetch-introduced conflicts) on Mp3d,
whose two-cache-sized particle array supplies real conflict pressure.
"""

from dataclasses import replace

from repro.common.config import CacheConfig
from repro.metrics.formatting import format_table
from repro.prefetch.strategies import LPD

CONFIGS = {
    "direct-mapped": CacheConfig(),
    "victim-8": CacheConfig(victim_cache_lines=8),
    "2-way": CacheConfig(associativity=2),
}


def test_ablation_victim_cache(benchmark, ablation_runner, save_result):
    def sweep():
        out = {}
        for label, cache in CONFIGS.items():
            machine = replace(ablation_runner.base_machine(), cache=cache)
            run = ablation_runner.run("Mp3d", LPD, machine)
            mc = run.miss_counts
            out[label] = {
                "prefetched_lost": (
                    mc.nonsharing_prefetched
                    + mc.inval_true_prefetched
                    + mc.inval_false_prefetched
                )
                / run.demand_refs,
                "nonsharing": mc.nonsharing / run.demand_refs,
                "exec_cycles": run.exec_cycles,
                "victim_hits": sum(c.victim_hits for c in run.per_cpu),
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [label, round(r["prefetched_lost"], 5), round(r["nonsharing"], 4), r["exec_cycles"], r["victim_hits"]]
        for label, r in result.items()
    ]
    save_result(
        "ablation_victim_cache",
        format_table(
            ["Cache", "Prefetched-lost MR", "Non-sharing MR", "Exec cycles", "Victim hits"],
            rows,
            title="Ablation: conflict-miss mitigation under LPD (Mp3d)",
        ),
    )

    base = result["direct-mapped"]
    # The victim cache is actually exercised.
    assert result["victim-8"]["victim_hits"] > 0
    # Both mitigations absorb conflict misses (including those the early
    # LPD prefetches introduce) without hurting execution time.
    for label in ("victim-8", "2-way"):
        assert result[label]["nonsharing"] <= base["nonsharing"], label
        assert result[label]["prefetched_lost"] <= base["prefetched_lost"], label
        assert result[label]["exec_cycles"] <= base["exec_cycles"] * 1.02, label
